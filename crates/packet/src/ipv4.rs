//! IPv4 packet view (no options support beyond skipping them, like the
//! fast path of a real vSwitch).

use crate::checksum;
use crate::{Result, WireError};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers the dataplane cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    Other(u8),
}

impl IpProtocol {
    /// Raw protocol number.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Parses the raw protocol number.
    pub fn from_u8(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// A view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLAGS_FRAG: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC: Range<usize> = 12..16;
    pub const DST: Range<usize> = 16..20;
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validates structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(WireError::Unsupported);
        }
        let ihl = usize::from(data[field::VER_IHL] & 0x0f) * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(WireError::BadLength);
        }
        let total = usize::from(self.total_len());
        if total < ihl || data.len() < total {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// DSCP+ECN byte (the OpenFlow `nw_tos` field).
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN]
    }

    /// Total packet length from the header.
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::LENGTH.start], d[field::LENGTH.start + 1]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_u8(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        checksum::fold(checksum::raw_sum(&self.buffer.as_ref()[..hl])) == 0xffff
    }

    /// Payload after the header, bounded by `total_len`.
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = usize::from(self.total_len()).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Writes version=4 and the given header length (must be a multiple of 4).
    pub fn set_version_and_header_len(&mut self, header_len: usize) {
        debug_assert!(header_len % 4 == 0 && header_len >= IPV4_HEADER_LEN);
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4) as u8;
    }

    /// Sets the DSCP+ECN byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[field::DSCP_ECN] = tos;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets flags+fragment offset (we always emit DF, offset 0 in builders).
    pub fn set_flags_frag(&mut self, v: u16) {
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Sets the transport protocol.
    pub fn set_protocol(&mut self, proto: IpProtocol) {
        self.buffer.as_mut()[field::PROTOCOL] = proto.to_u8();
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.octets());
    }

    /// Recomputes and writes the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let hl = self.header_len();
        let sum = checksum::checksum(&self.buffer.as_ref()[..hl]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = usize::from(self.total_len()).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[hl..total]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total_len: u16) -> Vec<u8> {
        let mut buf = vec![0u8; usize::from(total_len)];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_version_and_header_len(IPV4_HEADER_LEN);
        p.set_tos(0);
        p.set_total_len(total_len);
        p.set_ident(7);
        p.set_flags_frag(0x4000);
        p.set_ttl(64);
        p.set_protocol(IpProtocol::Udp);
        p.set_src_addr(Ipv4Addr::new(10, 0, 0, 1));
        p.set_dst_addr(Ipv4Addr::new(10, 0, 0, 2));
        p.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample(46);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 46);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), IpProtocol::Udp);
        assert_eq!(p.src_addr(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.dst_addr(), Ipv4Addr::new(10, 0, 0, 2));
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 26);
    }

    #[test]
    fn corrupting_any_header_byte_breaks_checksum() {
        let buf = sample(46);
        for i in 0..IPV4_HEADER_LEN {
            let mut bad = buf.clone();
            bad[i] ^= 0x5a;
            let p = Ipv4Packet::new_unchecked(&bad[..]);
            // Some corruptions also make the packet structurally invalid;
            // only checksum-verify structurally valid ones.
            if p.check_len().is_ok() {
                assert!(!p.verify_checksum(), "byte {i} corruption undetected");
            }
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = sample(46);
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Unsupported
        );
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = sample(46);
        buf.truncate(40);
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = sample(46);
        buf[0] = 0x44; // IHL = 16 bytes < 20
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }
}
