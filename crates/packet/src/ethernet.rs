//! Ethernet II frame view.

use crate::{Result, WireError};

/// Length of an Ethernet II header: destination + source MAC + ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast address from a small index, so
    /// tests and examples get stable, readable MACs (`02:00:00:00:00:<n>`).
    pub fn local(index: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, index])
    }

    /// True if the least-significant bit of the first octet is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for `ff:ff:ff:ff:ff:ff`.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if every octet is zero.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::ZERO
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(v: [u8; 6]) -> Self {
        MacAddr(v)
    }
}

/// EtherType values understood by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Vlan,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// Raw 16-bit value as it appears on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Other(v) => v,
        }
    }

    /// Parses the raw wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            other => EtherType::Other(other),
        }
    }
}

/// A read (and optionally write) view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const DST: Range<usize> = 0..6;
    pub const SRC: Range<usize> = 6..12;
    pub const ETHERTYPE: Range<usize> = 12..14;
    pub const PAYLOAD: usize = 14;
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> EthernetFrame<T> {
        EthernetFrame { buffer }
    }

    /// Wraps a buffer, ensuring it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<EthernetFrame<T>> {
        let frame = Self::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Validates the buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < ETHERNET_HEADER_LEN {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        let data = self.buffer.as_ref();
        let mut b = [0u8; 6];
        b.copy_from_slice(&data[field::DST]);
        MacAddr(b)
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        let data = self.buffer.as_ref();
        let mut b = [0u8; 6];
        b.copy_from_slice(&data[field::SRC]);
        MacAddr(b)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let data = self.buffer.as_ref();
        EtherType::from_u16(u16::from_be_bytes([
            data[field::ETHERTYPE.start],
            data[field::ETHERTYPE.start + 1],
        ]))
    }

    /// Immutable view of the payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.0);
    }

    /// Sets the EtherType field.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&ty.to_u16().to_be_bytes());
    }

    /// Mutable view of the payload following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 64];
        let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
        frame.set_dst_addr(MacAddr::local(2));
        frame.set_src_addr(MacAddr::local(1));
        frame.set_ethertype(EtherType::Ipv4);
        frame.payload_mut()[0] = 0xAB;
        buf
    }

    #[test]
    fn roundtrip_header_fields() {
        let buf = sample();
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst_addr(), MacAddr::local(2));
        assert_eq!(frame.src_addr(), MacAddr::local(1));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload()[0], 0xAB);
    }

    #[test]
    fn rejects_truncated_buffer() {
        let buf = [0u8; 13];
        assert_eq!(
            EthernetFrame::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn ethertype_mapping_roundtrips() {
        for raw in [0x0800u16, 0x0806, 0x8100, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_u16(raw).to_u16(), raw);
        }
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(1).is_multicast());
        assert!(MacAddr::ZERO.is_unspecified());
        assert_eq!(MacAddr::local(7).to_string(), "02:00:00:00:00:07");
    }
}
