//! UDP datagram view.

use crate::checksum;
use crate::{Result, WireError};
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A view over a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
    pub const PAYLOAD: usize = 8;
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> UdpDatagram<T> {
        UdpDatagram { buffer }
    }

    /// Wraps a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> Result<UdpDatagram<T>> {
        let dgram = Self::new_unchecked(buffer);
        dgram.check_len()?;
        Ok(dgram)
    }

    /// Validates structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = usize::from(self.len_field());
        if len < UDP_HEADER_LEN || data.len() < len {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// UDP length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Checksum field (0 means "not computed" for UDP over IPv4).
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// Verifies the checksum given the IPv4 pseudo-header addresses.
    /// A zero checksum field is accepted (checksum disabled).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = usize::from(self.len_field());
        let segment = &self.buffer.as_ref()[..len];
        let sum =
            checksum::pseudo_header_sum(src, dst, 17, len as u16) + checksum::raw_sum(segment);
        checksum::fold(sum) == 0xffff
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field()).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[field::PAYLOAD..len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the UDP length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and writes the checksum for the given pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let len = usize::from(self.len_field());
        let sum = checksum::transport_checksum(src, dst, 17, &self.buffer.as_ref()[..len]);
        // Per RFC 768, a computed checksum of zero is transmitted as all-ones.
        let sum = if sum == 0 { 0xffff } else { sum };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = usize::from(self.len_field()).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[field::PAYLOAD..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 20];
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_src_port(5555);
        d.set_dst_port(6666);
        d.set_len_field(20);
        d.payload_mut().copy_from_slice(&[9u8; 12]);
        d.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample();
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5555);
        assert_eq!(d.dst_port(), 6666);
        assert_eq!(d.len_field(), 20);
        assert_eq!(d.payload(), &[9u8; 12]);
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let buf = sample();
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, Ipv4Addr::new(10, 0, 9, 9)));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = sample();
        buf[6] = 0;
        buf[7] = 0;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_len_field_larger_than_buffer() {
        let mut buf = sample();
        buf[4] = 0;
        buf[5] = 200;
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
