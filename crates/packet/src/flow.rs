//! Flow key extraction — the parsed header tuple that drives the vSwitch
//! exact-match cache and the OpenFlow classifier.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use std::net::Ipv4Addr;

/// The parsed L2–L4 header tuple of one packet.
///
/// This mirrors the fields of an OpenFlow 1.0 12-tuple match *minus* the
/// ingress port, which the switch supplies separately (the same packet bytes
/// can arrive on different ports). Fields that do not apply to the packet
/// (e.g. L4 ports of a non-TCP/UDP packet) are zeroed — exactly as OVS
/// canonicalises its miniflows, so the key is well-defined and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    /// Raw EtherType of the innermost payload (after the VLAN tag, if any).
    pub eth_type: u16,
    /// VLAN ID (12 bits) or 0 when untagged.
    pub vlan_id: u16,
    pub ipv4_src: Ipv4Addr,
    pub ipv4_dst: Ipv4Addr,
    pub ip_proto: u8,
    pub ip_tos: u8,
    pub l4_src: u16,
    pub l4_dst: u16,
}

impl Default for FlowKey {
    fn default() -> Self {
        FlowKey {
            eth_src: MacAddr::ZERO,
            eth_dst: MacAddr::ZERO,
            eth_type: 0,
            vlan_id: 0,
            ipv4_src: Ipv4Addr::UNSPECIFIED,
            ipv4_dst: Ipv4Addr::UNSPECIFIED,
            ip_proto: 0,
            ip_tos: 0,
            l4_src: 0,
            l4_dst: 0,
        }
    }
}

impl FlowKey {
    /// Parses the headers of a raw Ethernet frame into a key.
    ///
    /// Malformed inner layers degrade gracefully: the key keeps the fields
    /// that parsed and zeroes the rest, mirroring how a real switch still
    /// forwards packets it cannot fully classify.
    pub fn extract(frame: &[u8]) -> FlowKey {
        let mut key = FlowKey::default();
        let Ok(eth) = EthernetFrame::new_checked(frame) else {
            return key;
        };
        key.eth_src = eth.src_addr();
        key.eth_dst = eth.dst_addr();
        let mut ethertype = eth.ethertype();
        let mut l3 = eth.payload();

        if ethertype == EtherType::Vlan && l3.len() >= 4 {
            key.vlan_id = u16::from_be_bytes([l3[0], l3[1]]) & 0x0fff;
            ethertype = EtherType::from_u16(u16::from_be_bytes([l3[2], l3[3]]));
            l3 = &l3[4..];
        }
        key.eth_type = ethertype.to_u16();

        if ethertype != EtherType::Ipv4 {
            return key;
        }
        let Ok(ip) = Ipv4Packet::new_checked(l3) else {
            return key;
        };
        key.ipv4_src = ip.src_addr();
        key.ipv4_dst = ip.dst_addr();
        key.ip_proto = ip.protocol().to_u8();
        key.ip_tos = ip.tos();

        match ip.protocol() {
            IpProtocol::Udp => {
                if let Ok(udp) = UdpDatagram::new_checked(ip.payload()) {
                    key.l4_src = udp.src_port();
                    key.l4_dst = udp.dst_port();
                }
            }
            IpProtocol::Tcp => {
                if let Ok(tcp) = TcpSegment::new_checked(ip.payload()) {
                    key.l4_src = tcp.src_port();
                    key.l4_dst = tcp.dst_port();
                }
            }
            _ => {}
        }
        key
    }

    /// Byte offset of the IPv4 header inside the frame this key was parsed
    /// from (accounts for the VLAN tag). Only meaningful when
    /// `eth_type == 0x0800`.
    pub fn l3_offset(&self) -> usize {
        if self.vlan_id != 0 {
            ETHERNET_HEADER_LEN + 4
        } else {
            ETHERNET_HEADER_LEN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn extracts_udp_five_tuple() {
        let pkt = PacketBuilder::udp_probe(64)
            .eth(MacAddr::local(1), MacAddr::local(2))
            .ip(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .ports(1111, 2222)
            .build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.eth_src, MacAddr::local(1));
        assert_eq!(key.eth_dst, MacAddr::local(2));
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.ipv4_src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(key.ipv4_dst, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(key.ip_proto, 17);
        assert_eq!(key.l4_src, 1111);
        assert_eq!(key.l4_dst, 2222);
        assert_eq!(key.vlan_id, 0);
    }

    #[test]
    fn non_ip_frame_zeroes_l3_and_l4() {
        let mut frame = vec![0u8; 60];
        let mut eth = EthernetFrame::new_unchecked(&mut frame[..]);
        eth.set_src_addr(MacAddr::local(3));
        eth.set_dst_addr(MacAddr::local(4));
        eth.set_ethertype(EtherType::Other(0x88cc)); // LLDP
        let key = FlowKey::extract(&frame);
        assert_eq!(key.eth_type, 0x88cc);
        assert_eq!(key.ipv4_src, Ipv4Addr::UNSPECIFIED);
        assert_eq!(key.l4_src, 0);
    }

    #[test]
    fn identical_packets_have_identical_keys() {
        let a = PacketBuilder::udp_probe(64).build();
        let b = PacketBuilder::udp_probe(64).build();
        assert_eq!(FlowKey::extract(&a), FlowKey::extract(&b));
    }

    #[test]
    fn truncated_frame_yields_default_key() {
        assert_eq!(FlowKey::extract(&[0u8; 5]), FlowKey::default());
    }

    #[test]
    fn vlan_tag_is_unwrapped() {
        // Hand-build an 802.1Q tagged UDP packet.
        let inner = PacketBuilder::udp_probe(64).ports(7, 8).build();
        let mut tagged = Vec::new();
        tagged.extend_from_slice(&inner[0..12]); // MACs
        tagged.extend_from_slice(&0x8100u16.to_be_bytes());
        tagged.extend_from_slice(&100u16.to_be_bytes()); // VID 100
        tagged.extend_from_slice(&inner[12..]); // original ethertype + rest
        let key = FlowKey::extract(&tagged);
        assert_eq!(key.vlan_id, 100);
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.l4_src, 7);
        assert_eq!(key.l4_dst, 8);
        assert_eq!(key.l3_offset(), 18);
    }
}
