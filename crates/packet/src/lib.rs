//! # packet-wire
//!
//! Zero-copy packet wire formats for the `vnf-highway` dataplane.
//!
//! The design follows the smoltcp idiom: every protocol has a *view* type
//! (`EthernetFrame`, `Ipv4Packet`, …) parameterised over any `AsRef<[u8]>`
//! buffer. Views validate lazily (`check_len`) and expose typed accessors for
//! every header field; mutable views (`AsMut<[u8]>`) expose setters. No view
//! ever allocates.
//!
//! On top of the views, the crate provides:
//!
//! * [`flow::FlowKey`] — the 5-tuple-plus-L2 key used by the vSwitch
//!   exact-match cache and the OpenFlow classifier;
//! * [`builder`] — infallible builders for the synthetic test/benchmark
//!   traffic used throughout the reproduction (64 B UDP probes with embedded
//!   sequence numbers and timestamps, matching the paper's workload);
//! * [`checksum`] — Internet checksum helpers shared by IPv4/UDP/TCP.

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOperation, ArpPacket};
pub use builder::{PacketBuilder, ProbeHeader, PROBE_WIRE_LEN};
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use flow::FlowKey;
pub use icmp::{IcmpPacket, IcmpType, ICMP_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
pub use tcp::TcpSegment;
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

/// Minimum legal Ethernet frame length (without FCS), i.e. the 64 B frames
/// used in the paper's evaluation minus the 4 B FCS the NIC strips.
pub const MIN_FRAME_LEN: usize = 60;

/// Errors produced when parsing wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated,
    /// A length field inside the packet is inconsistent with the buffer.
    BadLength,
    /// A checksum failed verification.
    BadChecksum,
    /// A version or type field holds an unsupported value.
    Unsupported,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer too short for header"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::Unsupported => write!(f, "unsupported version or type"),
        }
    }
}

impl std::error::Error for WireError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, WireError>;
