//! TCP segment view — enough of RFC 793 for classification, firewalling and
//! the web-cache VNF (ports, flags, seq/ack); not a full stack.

use crate::checksum;
use crate::{Result, WireError};
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;

    pub fn syn(&self) -> bool {
        self.0 & Self::SYN != 0
    }
    pub fn ack(&self) -> bool {
        self.0 & Self::ACK != 0
    }
    pub fn fin(&self) -> bool {
        self.0 & Self::FIN != 0
    }
    pub fn rst(&self) -> bool {
        self.0 & Self::RST != 0
    }
    pub fn psh(&self) -> bool {
        self.0 & Self::PSH != 0
    }
}

/// A view over a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> TcpSegment<T> {
        TcpSegment { buffer }
    }

    /// Wraps a buffer, validating header bounds.
    pub fn new_checked(buffer: T) -> Result<TcpSegment<T>> {
        let seg = Self::new_unchecked(buffer);
        seg.check_len()?;
        Ok(seg)
    }

    /// Validates structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let off = self.header_len();
        if off < TCP_HEADER_LEN || data.len() < off {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[field::FLAGS])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[14], d[15]])
    }

    /// Verifies the checksum against the IPv4 pseudo header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let seg = self.buffer.as_ref();
        let sum =
            checksum::pseudo_header_sum(src, dst, 6, seg.len() as u16) + checksum::raw_sum(seg);
        checksum::fold(sum) == 0xffff
    }

    /// Payload after header+options.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, ack: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the header length in bytes.
    pub fn set_header_len(&mut self, len: usize) {
        debug_assert!(len % 4 == 0 && len >= TCP_HEADER_LEN);
        self.buffer.as_mut()[field::DATA_OFF] = ((len / 4) as u8) << 4;
    }

    /// Sets the flag byte.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[field::FLAGS] = flags.0;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, win: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&win.to_be_bytes());
    }

    /// Computes and writes the checksum for the given pseudo header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = checksum::transport_checksum(src, dst, 6, self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 28];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.set_src_port(49152);
        s.set_dst_port(80);
        s.set_seq(0x01020304);
        s.set_ack(0x0a0b0c0d);
        s.set_header_len(20);
        s.set_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK));
        s.set_window(65535);
        s.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample();
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 49152);
        assert_eq!(s.dst_port(), 80);
        assert_eq!(s.seq(), 0x01020304);
        assert_eq!(s.ack(), 0x0a0b0c0d);
        assert!(s.flags().syn() && s.flags().ack());
        assert!(!s.flags().fin());
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload().len(), 8);
        assert!(s.verify_checksum(SRC, DST));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = sample();
        buf[25] ^= 0xff;
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!s.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = sample();
        buf[12] = 0x20; // header length 8 < 20
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }
}
