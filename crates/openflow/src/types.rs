//! Core OpenFlow scalar types.

/// An OpenFlow 1.0 port number (16-bit), including the reserved values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Highest number usable for a physical/virtual port.
    pub const MAX: PortNo = PortNo(0xff00);
    /// Send the packet back out its ingress port.
    pub const IN_PORT: PortNo = PortNo(0xfff8);
    /// Submit to the flow table (packet-out only).
    pub const TABLE: PortNo = PortNo(0xfff9);
    /// Legacy L2 learning path (unused by the reproduction, parsed anyway).
    pub const NORMAL: PortNo = PortNo(0xfffa);
    /// All ports except ingress and those with flooding disabled.
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// All ports except ingress.
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Encapsulate and send to the controller.
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// The switch's local networking stack.
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Wildcard / "no port" in requests.
    pub const NONE: PortNo = PortNo(0xffff);

    /// True for a concrete (non-reserved) port number.
    pub fn is_physical(self) -> bool {
        self.0 > 0 && self <= Self::MAX
    }

    /// Raw wire value.
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for PortNo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PortNo::IN_PORT => write!(f, "IN_PORT"),
            PortNo::TABLE => write!(f, "TABLE"),
            PortNo::NORMAL => write!(f, "NORMAL"),
            PortNo::FLOOD => write!(f, "FLOOD"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::LOCAL => write!(f, "LOCAL"),
            PortNo::NONE => write!(f, "NONE"),
            PortNo(n) => write!(f, "{n}"),
        }
    }
}

impl From<u16> for PortNo {
    fn from(v: u16) -> Self {
        PortNo(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_classification() {
        assert!(PortNo(1).is_physical());
        assert!(PortNo::MAX.is_physical());
        assert!(!PortNo(0).is_physical());
        assert!(!PortNo::FLOOD.is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
    }

    #[test]
    fn display_names() {
        assert_eq!(PortNo(3).to_string(), "3");
        assert_eq!(PortNo::FLOOD.to_string(), "FLOOD");
        assert_eq!(PortNo::CONTROLLER.to_string(), "CONTROLLER");
    }
}
