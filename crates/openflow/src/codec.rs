//! Byte-level OpenFlow 1.0 codec.
//!
//! Encodes/decodes the message subset in [`crate::messages`] with the real
//! OF 1.0 framing: 8-byte header (`version=0x01, type, length, xid`),
//! 40-byte `ofp_match` with the wildcard bitfield, and TLV action lists.
//! The controller and switch exchange these bytes over the control link, so
//! an unmodified controller implementation genuinely cannot tell the
//! highway-enabled switch apart — the transparency property under test.

use crate::action::Action;
use crate::fmatch::FlowMatch;
use crate::messages::*;
use crate::types::PortNo;
use crate::wire::{OfpHeader, OfpMarshal};
use crate::{OfError, Result};
use bytes::{Buf, BufMut};
use packet_wire::MacAddr;
use std::net::Ipv4Addr;

pub use crate::wire::OFP_VERSION;
/// Size of the common header.
pub const HEADER_LEN: usize = OfpHeader::SIZE;
/// Size of the OF 1.0 `ofp_match`.
pub const MATCH_LEN: usize = 40;

// ofp_flow_wildcards bits.
const OFPFW_IN_PORT: u32 = 1 << 0;
const OFPFW_DL_VLAN: u32 = 1 << 1;
const OFPFW_DL_SRC: u32 = 1 << 2;
const OFPFW_DL_DST: u32 = 1 << 3;
const OFPFW_DL_TYPE: u32 = 1 << 4;
const OFPFW_NW_PROTO: u32 = 1 << 5;
const OFPFW_TP_SRC: u32 = 1 << 6;
const OFPFW_TP_DST: u32 = 1 << 7;
const OFPFW_NW_SRC_SHIFT: u32 = 8;
const OFPFW_NW_DST_SHIFT: u32 = 14;
const OFPFW_DL_VLAN_PCP: u32 = 1 << 20;
const OFPFW_NW_TOS: u32 = 1 << 21;

fn put_match(buf: &mut Vec<u8>, m: &FlowMatch) {
    let mut wildcards: u32 = OFPFW_DL_VLAN_PCP; // we never match PCP
    if m.in_port.is_none() {
        wildcards |= OFPFW_IN_PORT;
    }
    if m.vlan_id.is_none() {
        wildcards |= OFPFW_DL_VLAN;
    }
    if m.eth_src.is_none() {
        wildcards |= OFPFW_DL_SRC;
    }
    if m.eth_dst.is_none() {
        wildcards |= OFPFW_DL_DST;
    }
    if m.eth_type.is_none() {
        wildcards |= OFPFW_DL_TYPE;
    }
    if m.ip_proto.is_none() {
        wildcards |= OFPFW_NW_PROTO;
    }
    if m.l4_src.is_none() {
        wildcards |= OFPFW_TP_SRC;
    }
    if m.l4_dst.is_none() {
        wildcards |= OFPFW_TP_DST;
    }
    if m.ip_tos.is_none() {
        wildcards |= OFPFW_NW_TOS;
    }
    let src_wild = 32 - u32::from(m.ipv4_src.map(|(_, l)| l).unwrap_or(0));
    let dst_wild = 32 - u32::from(m.ipv4_dst.map(|(_, l)| l).unwrap_or(0));
    wildcards |= src_wild << OFPFW_NW_SRC_SHIFT;
    wildcards |= dst_wild << OFPFW_NW_DST_SHIFT;

    buf.put_u32(wildcards);
    buf.put_u16(m.in_port.map(|p| p.0).unwrap_or(0));
    buf.put_slice(&m.eth_src.unwrap_or(MacAddr::ZERO).0);
    buf.put_slice(&m.eth_dst.unwrap_or(MacAddr::ZERO).0);
    buf.put_u16(m.vlan_id.unwrap_or(0));
    buf.put_u8(0); // dl_vlan_pcp
    buf.put_u8(0); // pad
    buf.put_u16(m.eth_type.unwrap_or(0));
    buf.put_u8(m.ip_tos.unwrap_or(0));
    buf.put_u8(m.ip_proto.unwrap_or(0));
    buf.put_slice(&[0, 0]); // pad
    buf.put_u32(m.ipv4_src.map(|(a, _)| u32::from(a)).unwrap_or(0));
    buf.put_u32(m.ipv4_dst.map(|(a, _)| u32::from(a)).unwrap_or(0));
    buf.put_u16(m.l4_src.unwrap_or(0));
    buf.put_u16(m.l4_dst.unwrap_or(0));
}

fn get_match(buf: &mut &[u8]) -> Result<FlowMatch> {
    if buf.remaining() < MATCH_LEN {
        return Err(OfError::Truncated);
    }
    let wildcards = buf.get_u32();
    let in_port = buf.get_u16();
    let mut eth_src = [0u8; 6];
    buf.copy_to_slice(&mut eth_src);
    let mut eth_dst = [0u8; 6];
    buf.copy_to_slice(&mut eth_dst);
    let vlan = buf.get_u16();
    let _pcp = buf.get_u8();
    let _pad = buf.get_u8();
    let eth_type = buf.get_u16();
    let tos = buf.get_u8();
    let proto = buf.get_u8();
    buf.advance(2);
    let nw_src = buf.get_u32();
    let nw_dst = buf.get_u32();
    let tp_src = buf.get_u16();
    let tp_dst = buf.get_u16();

    let src_wild = ((wildcards >> OFPFW_NW_SRC_SHIFT) & 0x3f).min(32) as u8;
    let dst_wild = ((wildcards >> OFPFW_NW_DST_SHIFT) & 0x3f).min(32) as u8;

    Ok(FlowMatch {
        in_port: (wildcards & OFPFW_IN_PORT == 0).then_some(PortNo(in_port)),
        eth_src: (wildcards & OFPFW_DL_SRC == 0).then_some(MacAddr(eth_src)),
        eth_dst: (wildcards & OFPFW_DL_DST == 0).then_some(MacAddr(eth_dst)),
        vlan_id: (wildcards & OFPFW_DL_VLAN == 0).then_some(vlan),
        eth_type: (wildcards & OFPFW_DL_TYPE == 0).then_some(eth_type),
        ip_tos: (wildcards & OFPFW_NW_TOS == 0).then_some(tos),
        ip_proto: (wildcards & OFPFW_NW_PROTO == 0).then_some(proto),
        ipv4_src: (src_wild < 32).then_some((Ipv4Addr::from(nw_src), 32 - src_wild)),
        ipv4_dst: (dst_wild < 32).then_some((Ipv4Addr::from(nw_dst), 32 - dst_wild)),
        l4_src: (wildcards & OFPFW_TP_SRC == 0).then_some(tp_src),
        l4_dst: (wildcards & OFPFW_TP_DST == 0).then_some(tp_dst),
    }
    .canonicalise())
}

fn put_actions(buf: &mut Vec<u8>, actions: &[Action]) {
    for a in actions {
        match a {
            Action::Output(p) => {
                buf.put_u16(0);
                buf.put_u16(8);
                buf.put_u16(p.0);
                buf.put_u16(0xffff); // max_len (to controller)
            }
            Action::SetVlanId(v) => {
                buf.put_u16(1);
                buf.put_u16(8);
                buf.put_u16(*v);
                buf.put_slice(&[0, 0]);
            }
            Action::StripVlan => {
                buf.put_u16(3);
                buf.put_u16(8);
                buf.put_slice(&[0; 4]);
            }
            Action::SetEthSrc(m) => {
                buf.put_u16(4);
                buf.put_u16(16);
                buf.put_slice(&m.0);
                buf.put_slice(&[0; 6]);
            }
            Action::SetEthDst(m) => {
                buf.put_u16(5);
                buf.put_u16(16);
                buf.put_slice(&m.0);
                buf.put_slice(&[0; 6]);
            }
            Action::SetIpv4Src(a) => {
                buf.put_u16(6);
                buf.put_u16(8);
                buf.put_u32(u32::from(*a));
            }
            Action::SetIpv4Dst(a) => {
                buf.put_u16(7);
                buf.put_u16(8);
                buf.put_u32(u32::from(*a));
            }
            Action::SetIpTos(t) => {
                buf.put_u16(8);
                buf.put_u16(8);
                buf.put_u8(*t);
                buf.put_slice(&[0; 3]);
            }
            Action::SetL4Src(p) => {
                buf.put_u16(9);
                buf.put_u16(8);
                buf.put_u16(*p);
                buf.put_slice(&[0, 0]);
            }
            Action::SetL4Dst(p) => {
                buf.put_u16(10);
                buf.put_u16(8);
                buf.put_u16(*p);
                buf.put_slice(&[0, 0]);
            }
        }
    }
}

fn get_actions(buf: &mut &[u8], mut len: usize) -> Result<Vec<Action>> {
    let mut actions = Vec::new();
    while len > 0 {
        if buf.remaining() < 4 || len < 4 {
            return Err(OfError::Truncated);
        }
        let ty = buf.get_u16();
        let alen = usize::from(buf.get_u16());
        if alen < 4 || alen > len || buf.remaining() < alen - 4 {
            return Err(OfError::BadLength);
        }
        let body_len = alen - 4;
        match ty {
            0 => {
                if body_len != 4 {
                    return Err(OfError::BadLength);
                }
                let port = buf.get_u16();
                let _max_len = buf.get_u16();
                actions.push(Action::Output(PortNo(port)));
            }
            1 => {
                if body_len < 2 {
                    return Err(OfError::BadLength);
                }
                let v = buf.get_u16();
                buf.advance(body_len - 2);
                actions.push(Action::SetVlanId(v));
            }
            3 => {
                buf.advance(body_len);
                actions.push(Action::StripVlan);
            }
            4 | 5 => {
                if body_len < 6 {
                    return Err(OfError::BadLength);
                }
                let mut mac = [0u8; 6];
                buf.copy_to_slice(&mut mac);
                buf.advance(body_len - 6);
                actions.push(if ty == 4 {
                    Action::SetEthSrc(MacAddr(mac))
                } else {
                    Action::SetEthDst(MacAddr(mac))
                });
            }
            6 | 7 => {
                if body_len < 4 {
                    return Err(OfError::BadLength);
                }
                let a = Ipv4Addr::from(buf.get_u32());
                buf.advance(body_len - 4);
                actions.push(if ty == 6 {
                    Action::SetIpv4Src(a)
                } else {
                    Action::SetIpv4Dst(a)
                });
            }
            8 => {
                if body_len < 1 {
                    return Err(OfError::BadLength);
                }
                let t = buf.get_u8();
                buf.advance(body_len - 1);
                actions.push(Action::SetIpTos(t));
            }
            9 | 10 => {
                if body_len < 2 {
                    return Err(OfError::BadLength);
                }
                let p = buf.get_u16();
                buf.advance(body_len - 2);
                actions.push(if ty == 9 {
                    Action::SetL4Src(p)
                } else {
                    Action::SetL4Dst(p)
                });
            }
            other => return Err(OfError::Unknown(format!("action type {other}"))),
        }
        len -= alen;
    }
    Ok(actions)
}

fn actions_wire_len(actions: &[Action]) -> usize {
    actions
        .iter()
        .map(|a| match a {
            Action::SetEthSrc(_) | Action::SetEthDst(_) => 16,
            _ => 8,
        })
        .sum()
}

/// Writes `s` into a fixed-width NUL-padded field, truncating if needed.
fn put_fixed_str(body: &mut Vec<u8>, s: &str, width: usize) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(width);
    body.extend_from_slice(&bytes[..n]);
    body.extend(std::iter::repeat(0u8).take(width - n));
}

/// Reads a fixed-width NUL-padded string field.
fn get_fixed_str(buf: &mut &[u8], width: usize) -> Result<String> {
    if buf.remaining() < width {
        return Err(OfError::Truncated);
    }
    let raw = &buf[..width];
    let end = raw.iter().position(|&b| b == 0).unwrap_or(width);
    let s = String::from_utf8_lossy(&raw[..end]).into_owned();
    buf.advance(width);
    Ok(s)
}

/// `OFPPC_PORT_DOWN`, the only port-config bit the reproduction models.
const OFPPC_PORT_DOWN: u32 = 1 << 0;

/// Writes an `ofp_phy_port` (48 bytes).
fn put_phy_port(body: &mut Vec<u8>, port_no: u16, name: &str, down: bool) {
    body.put_u16(port_no);
    body.put_slice(&[0; 6]); // hw_addr
    put_fixed_str(body, name, 16);
    body.put_u32(if down { OFPPC_PORT_DOWN } else { 0 }); // config
    body.put_u32(0); // state
    body.put_u32(0); // curr
    body.put_u32(0); // advertised
    body.put_u32(0); // supported
    body.put_u32(0); // peer
}

/// Encodes a message with the given transaction id into OF 1.0 bytes.
///
/// Thin wrapper over [`OfpMarshal::marshal`], kept for call-site brevity.
pub fn encode(msg: &OfpMessage, xid: u32) -> Vec<u8> {
    msg.marshal(xid)
}

/// Marshals only the message body (the bytes after the common header).
fn encode_body(msg: &OfpMessage) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match msg {
        OfpMessage::Hello
        | OfpMessage::FeaturesRequest
        | OfpMessage::BarrierRequest
        | OfpMessage::BarrierReply => {}
        OfpMessage::EchoRequest(d) | OfpMessage::EchoReply(d) => body.put_slice(d),
        OfpMessage::Error { err_type, code } => {
            body.put_u16(*err_type);
            body.put_u16(*code);
        }
        OfpMessage::FeaturesReply { datapath_id, ports } => {
            body.put_u64(*datapath_id);
            body.put_u32(256); // n_buffers
            body.put_u8(1); // n_tables
            body.put_slice(&[0; 3]);
            body.put_u32(0); // capabilities
            body.put_u32(0); // actions
            for p in ports {
                body.put_u16(*p);
                body.put_slice(&[0; 6]); // hw_addr
                let mut name = [0u8; 16];
                let s = format!("dpdkr{p}");
                name[..s.len().min(16)].copy_from_slice(&s.as_bytes()[..s.len().min(16)]);
                body.put_slice(&name);
                body.put_u32(0); // config
                body.put_u32(0); // state
                body.put_u32(0); // curr
                body.put_u32(0); // advertised
                body.put_u32(0); // supported
                body.put_u32(0); // peer
            }
        }
        OfpMessage::FlowMod(fm) => {
            put_match(&mut body, &fm.fmatch);
            body.put_u64(fm.cookie);
            body.put_u16(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::ModifyStrict => 2,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            body.put_u16(fm.idle_timeout);
            body.put_u16(fm.hard_timeout);
            body.put_u16(fm.priority);
            body.put_u32(0xffff_ffff); // buffer_id: none
            body.put_u16(fm.out_port.0);
            body.put_u16(1); // flags: SEND_FLOW_REM
            put_actions(&mut body, &fm.actions);
        }
        OfpMessage::PacketIn(pi) => {
            body.put_u32(0xffff_ffff); // buffer_id: unbuffered
            body.put_u16(pi.data.len() as u16);
            body.put_u16(pi.in_port.0);
            body.put_u8(match pi.reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            body.put_u8(0);
            body.put_slice(&pi.data);
        }
        OfpMessage::PacketOut(po) => {
            body.put_u32(0xffff_ffff); // buffer_id: data attached
            body.put_u16(po.in_port.0);
            body.put_u16(actions_wire_len(&po.actions) as u16);
            put_actions(&mut body, &po.actions);
            body.put_slice(&po.data);
        }
        OfpMessage::FlowRemoved(fr) => {
            put_match(&mut body, &fr.fmatch);
            body.put_u64(fr.cookie);
            body.put_u16(fr.priority);
            body.put_u8(2); // reason: delete
            body.put_u8(0);
            body.put_u32(0); // duration_sec
            body.put_u32(0); // duration_nsec
            body.put_u16(0); // idle_timeout
            body.put_slice(&[0, 0]);
            body.put_u64(fr.packet_count);
            body.put_u64(fr.byte_count);
        }
        OfpMessage::FlowStatsRequest(req) => {
            body.put_u16(1); // OFPST_FLOW
            body.put_u16(0); // flags
            put_match(&mut body, &req.fmatch);
            body.put_u8(0xff); // table_id: all
            body.put_u8(0);
            body.put_u16(req.out_port.0);
        }
        OfpMessage::FlowStatsReply(entries) => {
            body.put_u16(1);
            body.put_u16(0);
            for e in entries {
                let entry_len = 88 + actions_wire_len(&e.actions);
                body.put_u16(entry_len as u16);
                body.put_u8(0); // table_id
                body.put_u8(0);
                put_match(&mut body, &e.fmatch);
                body.put_u32(e.duration_sec);
                body.put_u32(0); // duration_nsec
                body.put_u16(e.priority);
                body.put_u16(e.idle_timeout);
                body.put_u16(e.hard_timeout);
                body.put_slice(&[0; 6]);
                body.put_u64(e.cookie);
                body.put_u64(e.packet_count);
                body.put_u64(e.byte_count);
                put_actions(&mut body, &e.actions);
            }
        }
        OfpMessage::PortStatsRequest(req) => {
            body.put_u16(4); // OFPST_PORT
            body.put_u16(0);
            body.put_u16(req.port_no.0);
            body.put_slice(&[0; 6]);
        }
        OfpMessage::PortStatsReply(entries) => {
            body.put_u16(4);
            body.put_u16(0);
            for e in entries {
                body.put_u16(e.port_no);
                body.put_slice(&[0; 6]);
                body.put_u64(e.rx_packets);
                body.put_u64(e.tx_packets);
                body.put_u64(e.rx_bytes);
                body.put_u64(e.tx_bytes);
                body.put_u64(e.rx_dropped);
                body.put_u64(e.tx_dropped);
                // rx/tx errors and the 4 detailed error counters: zero.
                for _ in 0..6 {
                    body.put_u64(0);
                }
            }
        }
        OfpMessage::PortMod(pm) => {
            body.put_u16(pm.port_no.0);
            body.put_slice(&[0; 6]); // hw_addr (ignored by the reproduction)
            body.put_u32(if pm.down { OFPPC_PORT_DOWN } else { 0 }); // config
            body.put_u32(OFPPC_PORT_DOWN); // mask: only PORT_DOWN changes
            body.put_u32(0); // advertise
            body.put_u32(0); // pad
        }
        OfpMessage::PortStatus(ps) => {
            body.put_u8(match ps.reason {
                PortStatusReason::Add => 0,
                PortStatusReason::Delete => 1,
                PortStatusReason::Modify => 2,
            });
            body.put_slice(&[0; 7]);
            put_phy_port(&mut body, ps.port_no, &ps.name, ps.down);
        }
        OfpMessage::AggregateStatsRequest(req) => {
            body.put_u16(2); // OFPST_AGGREGATE
            body.put_u16(0);
            put_match(&mut body, &req.fmatch);
            body.put_u8(0xff); // table_id: all
            body.put_u8(0);
            body.put_u16(req.out_port.0);
        }
        OfpMessage::AggregateStatsReply(agg) => {
            body.put_u16(2);
            body.put_u16(0);
            body.put_u64(agg.packet_count);
            body.put_u64(agg.byte_count);
            body.put_u32(agg.flow_count);
            body.put_u32(0); // pad
        }
        OfpMessage::TableStatsRequest => {
            body.put_u16(3); // OFPST_TABLE
            body.put_u16(0);
        }
        OfpMessage::TableStatsReply(entries) => {
            body.put_u16(3);
            body.put_u16(0);
            for e in entries {
                body.put_u8(e.table_id);
                body.put_slice(&[0; 3]);
                put_fixed_str(&mut body, &e.name, 32);
                body.put_u32(0x003f_ffff); // wildcards: everything maskable
                body.put_u32(e.max_entries);
                body.put_u32(e.active_count);
                body.put_u64(e.lookup_count);
                body.put_u64(e.matched_count);
            }
        }
        OfpMessage::DescStatsRequest => {
            body.put_u16(0); // OFPST_DESC
            body.put_u16(0);
        }
        OfpMessage::DescStatsReply(d) => {
            body.put_u16(0);
            body.put_u16(0);
            put_fixed_str(&mut body, &d.manufacturer, 256);
            put_fixed_str(&mut body, &d.hardware, 256);
            put_fixed_str(&mut body, &d.software, 256);
            put_fixed_str(&mut body, &d.serial, 32);
            put_fixed_str(&mut body, &d.datapath, 256);
        }
    }
    body
}

impl OfpMarshal for OfpMessage {
    /// Analytic wire size — must agree byte-for-byte with [`OfpMarshal::marshal`]
    /// (the generated round-trip tests enforce this per message type).
    fn size_of(&self) -> usize {
        let body = match self {
            OfpMessage::Hello
            | OfpMessage::FeaturesRequest
            | OfpMessage::BarrierRequest
            | OfpMessage::BarrierReply => 0,
            OfpMessage::EchoRequest(d) | OfpMessage::EchoReply(d) => d.len(),
            OfpMessage::Error { .. } => 4,
            OfpMessage::FeaturesReply { ports, .. } => 24 + 48 * ports.len(),
            OfpMessage::FlowMod(fm) => MATCH_LEN + 24 + actions_wire_len(&fm.actions),
            OfpMessage::PacketIn(pi) => 10 + pi.data.len(),
            OfpMessage::PacketOut(po) => 8 + actions_wire_len(&po.actions) + po.data.len(),
            OfpMessage::FlowRemoved(_) => MATCH_LEN + 40,
            OfpMessage::FlowStatsRequest(_) => 4 + MATCH_LEN + 4,
            OfpMessage::FlowStatsReply(entries) => {
                4 + entries
                    .iter()
                    .map(|e| 88 + actions_wire_len(&e.actions))
                    .sum::<usize>()
            }
            OfpMessage::PortStatsRequest(_) => 12,
            OfpMessage::PortStatsReply(entries) => 4 + 104 * entries.len(),
            OfpMessage::PortMod(_) => 24,
            OfpMessage::PortStatus(_) => 56,
            OfpMessage::AggregateStatsRequest(_) => 4 + MATCH_LEN + 4,
            OfpMessage::AggregateStatsReply(_) => 28,
            OfpMessage::TableStatsRequest => 4,
            OfpMessage::TableStatsReply(entries) => 4 + 64 * entries.len(),
            OfpMessage::DescStatsRequest => 4,
            OfpMessage::DescStatsReply(_) => 4 + 256 * 4 + 32,
        };
        HEADER_LEN + body
    }

    fn header_of(&self, xid: u32) -> OfpHeader {
        OfpHeader::new(OFP_VERSION, self.type_id(), self.size_of() as u16, xid)
    }

    fn marshal(&self, xid: u32) -> Vec<u8> {
        let body = encode_body(self);
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        OfpHeader::new(
            OFP_VERSION,
            self.type_id(),
            (HEADER_LEN + body.len()) as u16,
            xid,
        )
        .marshal(&mut out);
        out.extend_from_slice(&body);
        out
    }

    fn parse(header: &OfpHeader, body: &[u8]) -> Result<(OfpMessage, u32)> {
        if header.version != OFP_VERSION {
            return Err(OfError::BadVersion(header.version));
        }
        if header.length() != HEADER_LEN + body.len() {
            return Err(OfError::BadLength);
        }
        let msg = parse_body(header.typ, body)?;
        Ok((msg, header.xid))
    }
}

/// Decodes one OF 1.0 message; returns it with its transaction id.
///
/// Thin wrapper over [`OfpMarshal::parse`] for a single complete frame;
/// the byte-stream path cuts frames with [`crate::framer::Framer`] first.
pub fn decode(data: &[u8]) -> Result<(OfpMessage, u32)> {
    let header = OfpHeader::parse(data)?;
    if header.version != OFP_VERSION {
        return Err(OfError::BadVersion(header.version));
    }
    if header.length() != data.len() {
        return Err(OfError::BadLength);
    }
    OfpMessage::parse(&header, &data[HEADER_LEN..])
}

/// Parses a message body given its already-framed header type.
fn parse_body(ty: u8, body: &[u8]) -> Result<OfpMessage> {
    let mut buf = body;
    let body_len = body.len();

    let msg = match ty {
        0 => OfpMessage::Hello,
        1 => {
            if buf.remaining() < 4 {
                return Err(OfError::Truncated);
            }
            OfpMessage::Error {
                err_type: buf.get_u16(),
                code: buf.get_u16(),
            }
        }
        2 => OfpMessage::EchoRequest(buf.to_vec()),
        3 => OfpMessage::EchoReply(buf.to_vec()),
        5 => OfpMessage::FeaturesRequest,
        6 => {
            if buf.remaining() < 24 {
                return Err(OfError::Truncated);
            }
            let datapath_id = buf.get_u64();
            buf.advance(12); // n_buffers, n_tables, pad, capabilities — skip actions next
            buf.advance(4);
            let mut ports = Vec::new();
            while buf.remaining() >= 48 {
                ports.push(buf.get_u16());
                buf.advance(46);
            }
            OfpMessage::FeaturesReply { datapath_id, ports }
        }
        10 => {
            if buf.remaining() < 10 {
                return Err(OfError::Truncated);
            }
            let _buffer_id = buf.get_u32();
            let _total_len = buf.get_u16();
            let in_port = PortNo(buf.get_u16());
            let reason = match buf.get_u8() {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                other => return Err(OfError::Unknown(format!("packet-in reason {other}"))),
            };
            buf.advance(1);
            OfpMessage::PacketIn(PacketIn {
                in_port,
                reason,
                data: buf.to_vec(),
            })
        }
        11 => {
            let fmatch = get_match(&mut buf)?;
            if buf.remaining() < 40 {
                return Err(OfError::Truncated);
            }
            let cookie = buf.get_u64();
            let priority = buf.get_u16();
            buf.advance(2 + 4 + 4 + 2 + 2);
            let packet_count = buf.get_u64();
            let byte_count = buf.get_u64();
            OfpMessage::FlowRemoved(FlowRemoved {
                fmatch,
                priority,
                cookie,
                packet_count,
                byte_count,
            })
        }
        13 => {
            if buf.remaining() < 8 {
                return Err(OfError::Truncated);
            }
            let _buffer_id = buf.get_u32();
            let in_port = PortNo(buf.get_u16());
            let actions_len = usize::from(buf.get_u16());
            let actions = get_actions(&mut buf, actions_len)?;
            OfpMessage::PacketOut(PacketOut {
                in_port,
                actions,
                data: buf.to_vec(),
            })
        }
        14 => {
            let fmatch = get_match(&mut buf)?;
            if buf.remaining() < 24 {
                return Err(OfError::Truncated);
            }
            let cookie = buf.get_u64();
            let command = match buf.get_u16() {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                other => return Err(OfError::Unknown(format!("flow_mod command {other}"))),
            };
            let idle_timeout = buf.get_u16();
            let hard_timeout = buf.get_u16();
            let priority = buf.get_u16();
            let _buffer_id = buf.get_u32();
            let out_port = PortNo(buf.get_u16());
            let _flags = buf.get_u16();
            let actions = get_actions(&mut buf, body_len - MATCH_LEN - 24)?;
            OfpMessage::FlowMod(FlowMod {
                command,
                fmatch,
                priority,
                actions,
                cookie,
                idle_timeout,
                hard_timeout,
                out_port,
            })
        }
        12 => {
            if buf.remaining() < 8 {
                return Err(OfError::Truncated);
            }
            let reason = match buf.get_u8() {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                2 => PortStatusReason::Modify,
                other => return Err(OfError::Unknown(format!("port-status reason {other}"))),
            };
            buf.advance(7);
            if buf.remaining() < 48 {
                return Err(OfError::Truncated);
            }
            let port_no = buf.get_u16();
            buf.advance(6); // hw_addr
            let name = get_fixed_str(&mut buf, 16)?;
            let config = buf.get_u32();
            buf.advance(20); // state + curr/advertised/supported/peer
            OfpMessage::PortStatus(PortStatus {
                reason,
                port_no,
                name,
                down: config & OFPPC_PORT_DOWN != 0,
            })
        }
        15 => {
            if buf.remaining() < 24 {
                return Err(OfError::Truncated);
            }
            let port_no = PortNo(buf.get_u16());
            buf.advance(6); // hw_addr
            let config = buf.get_u32();
            let mask = buf.get_u32();
            buf.advance(8); // advertise + pad
            if mask & OFPPC_PORT_DOWN == 0 {
                return Err(OfError::Unknown(
                    "port_mod without PORT_DOWN in mask".into(),
                ));
            }
            OfpMessage::PortMod(PortMod {
                port_no,
                down: config & OFPPC_PORT_DOWN != 0,
            })
        }
        16 => {
            if buf.remaining() < 4 {
                return Err(OfError::Truncated);
            }
            match buf.get_u16() {
                0 => {
                    buf.advance(2);
                    OfpMessage::DescStatsRequest
                }
                1 => {
                    buf.advance(2); // flags
                    let fmatch = get_match(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(OfError::Truncated);
                    }
                    buf.advance(2); // table_id + pad
                    let out_port = PortNo(buf.get_u16());
                    OfpMessage::FlowStatsRequest(FlowStatsRequest { fmatch, out_port })
                }
                2 => {
                    buf.advance(2);
                    let fmatch = get_match(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(OfError::Truncated);
                    }
                    buf.advance(2);
                    let out_port = PortNo(buf.get_u16());
                    OfpMessage::AggregateStatsRequest(AggregateStatsRequest { fmatch, out_port })
                }
                3 => {
                    buf.advance(2);
                    OfpMessage::TableStatsRequest
                }
                4 => {
                    buf.advance(2);
                    if buf.remaining() < 8 {
                        return Err(OfError::Truncated);
                    }
                    let port_no = PortNo(buf.get_u16());
                    OfpMessage::PortStatsRequest(PortStatsRequest { port_no })
                }
                other => return Err(OfError::Unknown(format!("stats type {other}"))),
            }
        }
        17 => {
            if buf.remaining() < 4 {
                return Err(OfError::Truncated);
            }
            match buf.get_u16() {
                0 => {
                    buf.advance(2);
                    let manufacturer = get_fixed_str(&mut buf, 256)?;
                    let hardware = get_fixed_str(&mut buf, 256)?;
                    let software = get_fixed_str(&mut buf, 256)?;
                    let serial = get_fixed_str(&mut buf, 32)?;
                    let datapath = get_fixed_str(&mut buf, 256)?;
                    OfpMessage::DescStatsReply(DescStats {
                        manufacturer,
                        hardware,
                        software,
                        serial,
                        datapath,
                    })
                }
                2 => {
                    buf.advance(2);
                    if buf.remaining() < 24 {
                        return Err(OfError::Truncated);
                    }
                    let packet_count = buf.get_u64();
                    let byte_count = buf.get_u64();
                    let flow_count = buf.get_u32();
                    buf.advance(4);
                    OfpMessage::AggregateStatsReply(AggregateStats {
                        packet_count,
                        byte_count,
                        flow_count,
                    })
                }
                3 => {
                    buf.advance(2);
                    let mut entries = Vec::new();
                    while buf.remaining() >= 64 {
                        let table_id = buf.get_u8();
                        buf.advance(3);
                        let name = get_fixed_str(&mut buf, 32)?;
                        let _wildcards = buf.get_u32();
                        let max_entries = buf.get_u32();
                        let active_count = buf.get_u32();
                        let lookup_count = buf.get_u64();
                        let matched_count = buf.get_u64();
                        entries.push(TableStatsEntry {
                            table_id,
                            name,
                            max_entries,
                            active_count,
                            lookup_count,
                            matched_count,
                        });
                    }
                    OfpMessage::TableStatsReply(entries)
                }
                1 => {
                    buf.advance(2);
                    let mut entries = Vec::new();
                    while buf.has_remaining() {
                        if buf.remaining() < 2 {
                            return Err(OfError::Truncated);
                        }
                        let entry_len = usize::from(buf.get_u16());
                        if entry_len < 88 || buf.remaining() < entry_len - 2 {
                            return Err(OfError::BadLength);
                        }
                        buf.advance(2); // table_id + pad
                        let fmatch = get_match(&mut buf)?;
                        let duration_sec = buf.get_u32();
                        let _nsec = buf.get_u32();
                        let priority = buf.get_u16();
                        let idle_timeout = buf.get_u16();
                        let hard_timeout = buf.get_u16();
                        buf.advance(6);
                        let cookie = buf.get_u64();
                        let packet_count = buf.get_u64();
                        let byte_count = buf.get_u64();
                        let actions = get_actions(&mut buf, entry_len - 88)?;
                        entries.push(FlowStatsEntry {
                            fmatch,
                            priority,
                            cookie,
                            duration_sec,
                            idle_timeout,
                            hard_timeout,
                            packet_count,
                            byte_count,
                            actions,
                        });
                    }
                    OfpMessage::FlowStatsReply(entries)
                }
                4 => {
                    buf.advance(2);
                    let mut entries = Vec::new();
                    while buf.remaining() >= 104 {
                        let port_no = buf.get_u16();
                        buf.advance(6);
                        let rx_packets = buf.get_u64();
                        let tx_packets = buf.get_u64();
                        let rx_bytes = buf.get_u64();
                        let tx_bytes = buf.get_u64();
                        let rx_dropped = buf.get_u64();
                        let tx_dropped = buf.get_u64();
                        buf.advance(48);
                        entries.push(PortStatsEntry {
                            port_no,
                            rx_packets,
                            tx_packets,
                            rx_bytes,
                            tx_bytes,
                            rx_dropped,
                            tx_dropped,
                        });
                    }
                    OfpMessage::PortStatsReply(entries)
                }
                other => return Err(OfError::Unknown(format!("stats type {other}"))),
            }
        }
        18 => OfpMessage::BarrierRequest,
        19 => OfpMessage::BarrierReply,
        other => return Err(OfError::Unknown(format!("message type {other}"))),
    };
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: OfpMessage) {
        let bytes = encode(&msg, 0x1234_5678);
        // Header sanity.
        assert_eq!(bytes[0], OFP_VERSION);
        assert_eq!(bytes[1], msg.type_id());
        assert_eq!(
            u16::from_be_bytes([bytes[2], bytes[3]]) as usize,
            bytes.len()
        );
        let (decoded, xid) = decode(&bytes).expect("decode");
        assert_eq!(xid, 0x1234_5678);
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_simple_messages() {
        roundtrip(OfpMessage::Hello);
        roundtrip(OfpMessage::EchoRequest(vec![1, 2, 3]));
        roundtrip(OfpMessage::EchoReply(vec![]));
        roundtrip(OfpMessage::FeaturesRequest);
        roundtrip(OfpMessage::BarrierRequest);
        roundtrip(OfpMessage::BarrierReply);
        roundtrip(OfpMessage::Error {
            err_type: 3,
            code: 2,
        });
    }

    #[test]
    fn roundtrip_features_reply() {
        roundtrip(OfpMessage::FeaturesReply {
            datapath_id: 0xabcdef,
            ports: vec![1, 2, 3, 4],
        });
    }

    #[test]
    fn roundtrip_flow_mod_with_all_action_kinds() {
        let mut fmatch = FlowMatch::in_port(PortNo(7));
        fmatch.eth_type = Some(0x0800);
        fmatch.ipv4_dst = Some((Ipv4Addr::new(10, 0, 0, 0), 24));
        fmatch.l4_dst = Some(80);
        let fm = FlowMod {
            command: FlowModCommand::Add,
            fmatch,
            priority: 1000,
            actions: vec![
                Action::SetEthSrc(MacAddr::local(9)),
                Action::SetEthDst(MacAddr::local(8)),
                Action::SetIpv4Src(Ipv4Addr::new(1, 2, 3, 4)),
                Action::SetIpv4Dst(Ipv4Addr::new(4, 3, 2, 1)),
                Action::SetIpTos(0x2e),
                Action::SetL4Src(1),
                Action::SetL4Dst(2),
                Action::SetVlanId(5),
                Action::StripVlan,
                Action::Output(PortNo(3)),
            ],
            cookie: 0xdead_beef_cafe,
            idle_timeout: 30,
            hard_timeout: 300,
            out_port: PortNo::NONE,
        };
        roundtrip(OfpMessage::FlowMod(fm));
    }

    #[test]
    fn roundtrip_packet_in_out() {
        roundtrip(OfpMessage::PacketIn(PacketIn {
            in_port: PortNo(2),
            reason: PacketInReason::NoMatch,
            data: vec![0xaa; 64],
        }));
        roundtrip(OfpMessage::PacketOut(PacketOut {
            in_port: PortNo::NONE,
            actions: vec![Action::Output(PortNo(5))],
            data: vec![0x55; 60],
        }));
    }

    #[test]
    fn roundtrip_stats() {
        roundtrip(OfpMessage::FlowStatsRequest(FlowStatsRequest {
            fmatch: FlowMatch::any(),
            out_port: PortNo::NONE,
        }));
        roundtrip(OfpMessage::FlowStatsReply(vec![FlowStatsEntry {
            fmatch: FlowMatch::in_port(PortNo(1)),
            priority: 10,
            cookie: 99,
            duration_sec: 5,
            idle_timeout: 0,
            hard_timeout: 0,
            packet_count: 12345,
            byte_count: 790080,
            actions: vec![Action::Output(PortNo(2))],
        }]));
        roundtrip(OfpMessage::PortStatsRequest(PortStatsRequest {
            port_no: PortNo::NONE,
        }));
        roundtrip(OfpMessage::PortStatsReply(vec![
            PortStatsEntry {
                port_no: 1,
                rx_packets: 1,
                tx_packets: 2,
                rx_bytes: 64,
                tx_bytes: 128,
                rx_dropped: 0,
                tx_dropped: 3,
            },
            PortStatsEntry::default(),
        ]));
    }

    #[test]
    fn roundtrip_flow_removed() {
        roundtrip(OfpMessage::FlowRemoved(FlowRemoved {
            fmatch: FlowMatch::in_port(PortNo(4)),
            priority: 7,
            cookie: 1,
            packet_count: 10,
            byte_count: 640,
        }));
    }

    #[test]
    fn roundtrip_port_mod_and_status() {
        roundtrip(OfpMessage::PortMod(PortMod {
            port_no: PortNo(3),
            down: true,
        }));
        roundtrip(OfpMessage::PortMod(PortMod {
            port_no: PortNo(3),
            down: false,
        }));
        for reason in [
            PortStatusReason::Add,
            PortStatusReason::Delete,
            PortStatusReason::Modify,
        ] {
            roundtrip(OfpMessage::PortStatus(PortStatus {
                reason,
                port_no: 9,
                name: "dpdkr9".into(),
                down: reason == PortStatusReason::Modify,
            }));
        }
    }

    #[test]
    fn roundtrip_aggregate_table_desc_stats() {
        let mut fmatch = FlowMatch::in_port(PortNo(1));
        fmatch.l4_dst = Some(80);
        roundtrip(OfpMessage::AggregateStatsRequest(AggregateStatsRequest {
            fmatch,
            out_port: PortNo(2),
        }));
        roundtrip(OfpMessage::AggregateStatsReply(AggregateStats {
            packet_count: 1_000_000,
            byte_count: 64_000_000,
            flow_count: 12,
        }));
        roundtrip(OfpMessage::TableStatsRequest);
        roundtrip(OfpMessage::TableStatsReply(vec![TableStatsEntry {
            table_id: 0,
            name: "classifier".into(),
            max_entries: 1_000_000,
            active_count: 42,
            lookup_count: 777,
            matched_count: 700,
        }]));
        roundtrip(OfpMessage::DescStatsRequest);
        roundtrip(OfpMessage::DescStatsReply(DescStats {
            manufacturer: "vnf-highway".into(),
            hardware: "simulated".into(),
            software: "ovs-dp 0.1".into(),
            serial: "None".into(),
            datapath: "highway datapath".into(),
        }));
    }

    #[test]
    fn fixed_str_truncates_and_trims() {
        let mut body = Vec::new();
        put_fixed_str(&mut body, "a-name-way-longer-than-the-field", 8);
        assert_eq!(body.len(), 8);
        let mut slice = &body[..];
        assert_eq!(get_fixed_str(&mut slice, 8).unwrap(), "a-name-w");

        let mut body = Vec::new();
        put_fixed_str(&mut body, "ok", 8);
        let mut slice = &body[..];
        assert_eq!(get_fixed_str(&mut slice, 8).unwrap(), "ok");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[]).unwrap_err(), OfError::Truncated);
        assert_eq!(
            decode(&[0x04, 0, 0, 8, 0, 0, 0, 0]).unwrap_err(),
            OfError::BadVersion(0x04)
        );
        // Length field disagreeing with the buffer.
        let mut bytes = encode(&OfpMessage::Hello, 1);
        bytes.push(0);
        assert_eq!(decode(&bytes).unwrap_err(), OfError::BadLength);
    }

    #[test]
    fn truncated_action_bodies_error_instead_of_panicking() {
        // A FlowMod whose action list ends in a TLV that claims alen=4 for
        // a type that needs a body (SetVlanId) — previously a panic.
        for (ty, alen) in [(1u16, 4u16), (8, 4), (9, 4), (10, 4), (1, 5)] {
            let mut bytes = encode(
                &OfpMessage::FlowMod(FlowMod::add(FlowMatch::any(), 1, vec![])),
                1,
            );
            bytes.extend_from_slice(&ty.to_be_bytes());
            bytes.extend_from_slice(&alen.to_be_bytes());
            bytes.extend(std::iter::repeat(0u8).take(usize::from(alen) - 4));
            let total = bytes.len() as u16;
            bytes[2..4].copy_from_slice(&total.to_be_bytes());
            assert!(decode(&bytes).is_err(), "type {ty} alen {alen}");
        }
    }

    /// Generates one `OfpMarshal` round-trip test per message type:
    /// `size_of` must agree with `marshal`'s byte count, `header_of` with the
    /// marshalled header, and `parse` must return the original message.
    macro_rules! marshal_roundtrip {
        ($($name:ident => $msg:expr;)+) => {
            $(
                #[test]
                fn $name() {
                    let msg: OfpMessage = $msg;
                    let xid = 0x0f00_0000 + line!();
                    let bytes = msg.marshal(xid);
                    assert_eq!(msg.size_of(), bytes.len(), "size_of vs marshal");
                    let header = msg.header_of(xid);
                    assert_eq!(header.typ, msg.type_id());
                    assert_eq!(header.length(), bytes.len());
                    assert_eq!(header.xid, xid);
                    let parsed = OfpHeader::parse(&bytes).unwrap();
                    assert_eq!(parsed, header);
                    let (decoded, got_xid) =
                        OfpMessage::parse(&parsed, &bytes[HEADER_LEN..]).unwrap();
                    assert_eq!(got_xid, xid);
                    assert_eq!(decoded, msg);
                }
            )+
        };
    }

    marshal_roundtrip! {
        marshal_hello => OfpMessage::Hello;
        marshal_error => OfpMessage::Error { err_type: 1, code: 2 };
        marshal_echo_request => OfpMessage::EchoRequest(vec![9, 8, 7]);
        marshal_echo_reply => OfpMessage::EchoReply(vec![]);
        marshal_features_request => OfpMessage::FeaturesRequest;
        marshal_features_reply => OfpMessage::FeaturesReply {
            datapath_id: 0x42,
            ports: vec![1, 2, 7],
        };
        marshal_packet_in => OfpMessage::PacketIn(PacketIn {
            in_port: PortNo(3),
            reason: PacketInReason::Action,
            data: vec![0xab; 33],
        });
        marshal_flow_removed => OfpMessage::FlowRemoved(FlowRemoved {
            fmatch: FlowMatch::in_port(PortNo(1)),
            priority: 5,
            cookie: 77,
            packet_count: 4,
            byte_count: 256,
        });
        marshal_port_status => OfpMessage::PortStatus(PortStatus {
            reason: PortStatusReason::Modify,
            port_no: 4,
            name: "dpdkr4".into(),
            down: true,
        });
        marshal_packet_out => OfpMessage::PacketOut(PacketOut {
            in_port: PortNo(1),
            actions: vec![Action::Output(PortNo(2)), Action::SetVlanId(9)],
            data: vec![0x11; 60],
        });
        marshal_flow_mod => OfpMessage::FlowMod(
            FlowMod::add(
                FlowMatch::in_port(PortNo(9)),
                500,
                vec![
                    Action::SetEthDst(MacAddr::local(3)),
                    Action::Output(PortNo(10)),
                ],
            )
            .with_cookie(0xc0de),
        );
        marshal_port_mod => OfpMessage::PortMod(PortMod {
            port_no: PortNo(6),
            down: false,
        });
        marshal_flow_stats_request => OfpMessage::FlowStatsRequest(FlowStatsRequest {
            fmatch: FlowMatch::any(),
            out_port: PortNo::NONE,
        });
        marshal_flow_stats_reply => OfpMessage::FlowStatsReply(vec![FlowStatsEntry {
            fmatch: FlowMatch::in_port(PortNo(2)),
            priority: 9,
            cookie: 3,
            duration_sec: 1,
            idle_timeout: 0,
            hard_timeout: 60,
            packet_count: 5,
            byte_count: 320,
            actions: vec![Action::StripVlan, Action::Output(PortNo(4))],
        }]);
        marshal_port_stats_request => OfpMessage::PortStatsRequest(PortStatsRequest {
            port_no: PortNo(2),
        });
        marshal_port_stats_reply => OfpMessage::PortStatsReply(vec![
            PortStatsEntry::default(),
            PortStatsEntry {
                port_no: 8,
                rx_packets: 10,
                tx_packets: 20,
                rx_bytes: 640,
                tx_bytes: 1280,
                rx_dropped: 1,
                tx_dropped: 2,
            },
        ]);
        marshal_aggregate_stats_request =>
            OfpMessage::AggregateStatsRequest(AggregateStatsRequest {
                fmatch: FlowMatch::in_port(PortNo(3)),
                out_port: PortNo::NONE,
            });
        marshal_aggregate_stats_reply => OfpMessage::AggregateStatsReply(AggregateStats {
            packet_count: 100,
            byte_count: 6400,
            flow_count: 3,
        });
        marshal_table_stats_request => OfpMessage::TableStatsRequest;
        marshal_table_stats_reply => OfpMessage::TableStatsReply(vec![TableStatsEntry {
            table_id: 0,
            name: "classifier".into(),
            max_entries: 4096,
            active_count: 7,
            lookup_count: 1000,
            matched_count: 900,
        }]);
        marshal_desc_stats_request => OfpMessage::DescStatsRequest;
        marshal_desc_stats_reply => OfpMessage::DescStatsReply(DescStats {
            manufacturer: "m".into(),
            hardware: "h".into(),
            software: "s".into(),
            serial: "sn".into(),
            datapath: "dp".into(),
        });
        marshal_barrier_request => OfpMessage::BarrierRequest;
        marshal_barrier_reply => OfpMessage::BarrierReply;
    }

    #[test]
    fn match_wildcard_roundtrip_edge_cases() {
        // Fully wildcarded.
        let mut body = Vec::new();
        put_match(&mut body, &FlowMatch::any());
        let mut slice = &body[..];
        assert_eq!(get_match(&mut slice).unwrap(), FlowMatch::any());

        // Exact /32 prefixes.
        let mut m = FlowMatch::any();
        m.ipv4_src = Some((Ipv4Addr::new(1, 1, 1, 1), 32));
        m.ipv4_dst = Some((Ipv4Addr::new(2, 2, 2, 2), 32));
        let mut body = Vec::new();
        put_match(&mut body, &m);
        let mut slice = &body[..];
        assert_eq!(get_match(&mut slice).unwrap(), m);
    }
}
