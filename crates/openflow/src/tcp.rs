//! A real TCP [`Transport`] over std networking.
//!
//! [`TcpTransport`] wraps a non-blocking [`std::net::TcpStream`] in the
//! byte-stream contract the rest of the control channel already speaks:
//! `WouldBlock` becomes the would-block `Ok(0)`, a zero-length read (the
//! peer closed its end) becomes [`OfError::Disconnected`], and partial
//! writes surface exactly as they do on a saturated socket. Everything
//! above — [`crate::framer::Framer`], [`crate::connection::Connection`],
//! [`crate::controller::SwitchLink`] — runs unchanged, which is the point:
//! the in-memory transports and the socket differ only in who moves the
//! bytes.
//!
//! Tests bind to `127.0.0.1:0` (an ephemeral loopback port) so nothing
//! ever listens on an outside interface.

use crate::transport::Transport;
use crate::{OfError, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// A [`Transport`] over a connected TCP stream.
///
/// The stream is switched to non-blocking mode and `TCP_NODELAY` is set
/// (control messages are latency-sensitive and tiny; Nagle would batch
/// a flow-mod against its own barrier).
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to `addr` and prepares the stream for non-blocking use.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        TcpTransport::from_stream(TcpStream::connect(addr)?)
    }

    /// Adopts an already-connected stream (e.g. from an acceptor).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }

    /// The local socket address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// A second handle onto the same socket — lets a test keep the power
    /// to `shutdown(2)` the stream after the transport is boxed away
    /// (simulating a controller process dying mid-write).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

impl Transport for TcpTransport {
    fn send(&self, buf: &[u8]) -> Result<usize> {
        match (&self.stream).write(buf) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(_) => Err(OfError::Disconnected),
        }
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        match (&self.stream).read(buf) {
            // An orderly zero-length read is EOF: the peer closed.
            Ok(0) => Err(OfError::Disconnected),
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(_) => Err(OfError::Disconnected),
        }
    }
}

/// Binds an ephemeral loopback listener and returns it with its address —
/// the standard opening move of every TCP test and of a switch exposing a
/// control port.
pub fn loopback_listener() -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// A connected loopback transport pair `(client, server)` — the TCP
/// equivalent of [`crate::transport::loopback`], for tests that want real
/// socket semantics (kernel buffering, partial writes at real
/// boundaries).
pub fn tcp_pair() -> std::io::Result<(TcpTransport, TcpTransport)> {
    let (listener, addr) = loopback_listener()?;
    let client = TcpStream::connect(addr)?;
    let (server, _) = listener.accept()?;
    Ok((
        TcpTransport::from_stream(client)?,
        TcpTransport::from_stream(server)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_pair_moves_bytes_both_ways() {
        let (a, b) = tcp_pair().unwrap();
        assert_eq!(a.send(b"hello").unwrap(), 5);
        let mut buf = [0u8; 16];
        let mut got = 0;
        while got < 5 {
            got += b.recv(&mut buf[got..]).unwrap();
        }
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.send(b"yo").unwrap(), 2);
        got = 0;
        while got < 2 {
            got += a.recv(&mut buf[got..]).unwrap();
        }
        assert_eq!(&buf[..2], b"yo");
        // Nothing more in flight: would-block, not error.
        assert_eq!(a.recv(&mut buf).unwrap(), 0);
    }

    #[test]
    fn tcp_peer_close_surfaces_as_disconnected() {
        let (a, b) = tcp_pair().unwrap();
        a.send(b"bye").unwrap();
        drop(a);
        let mut buf = [0u8; 16];
        // Delivered bytes drain first, then EOF.
        let mut got = 0;
        loop {
            match b.recv(&mut buf[got..]) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => {
                    got += n;
                    if got >= 3 {
                        break;
                    }
                }
                Err(e) => panic!("lost delivered bytes: {e}"),
            }
        }
        assert_eq!(&buf[..3], b"bye");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match b.recv(&mut buf) {
                Err(OfError::Disconnected) => break,
                Ok(0) if std::time::Instant::now() < deadline => std::thread::yield_now(),
                other => panic!("expected Disconnected, got {other:?}"),
            }
        }
    }
}
