//! The OFP 1.0 common header and the message marshalling trait.
//!
//! Every OpenFlow message starts with the same 8 bytes — `version`, `type`,
//! `length`, `xid` — and the `length` field is what lets a byte-stream
//! receiver cut frames out of a TCP-like transport (see [`crate::framer`]).
//! [`OfpHeader`] models exactly that header; [`OfpMarshal`] is the
//! message-level API (`size_of` / `marshal` / `parse`) the codec implements
//! for [`crate::OfpMessage`], mirroring `rust_ofp`'s `OfpMessage` trait.

use crate::{OfError, Result};

/// Protocol version byte for OpenFlow 1.0.
pub const OFP_VERSION: u8 = 0x01;

/// The first fields of every OpenFlow message, no matter the version.
///
/// Parsed first to determine version and length of the remaining message,
/// so the byte stream can be framed before any body is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfpHeader {
    pub version: u8,
    pub typ: u8,
    /// Total message length in bytes, *including* this header.
    pub length: u16,
    /// Transaction id; replies carry the request's xid to allow pairing.
    pub xid: u32,
}

impl OfpHeader {
    /// The byte-size of the common header.
    pub const SIZE: usize = 8;

    /// Creates a header from its fields.
    pub fn new(version: u8, typ: u8, length: u16, xid: u32) -> OfpHeader {
        OfpHeader {
            version,
            typ,
            length,
            xid,
        }
    }

    /// Appends the 8 header bytes (big-endian) to `bytes`.
    pub fn marshal(&self, bytes: &mut Vec<u8>) {
        bytes.push(self.version);
        bytes.push(self.typ);
        bytes.extend_from_slice(&self.length.to_be_bytes());
        bytes.extend_from_slice(&self.xid.to_be_bytes());
    }

    /// Parses a header from the first [`OfpHeader::SIZE`] bytes of `buf`.
    ///
    /// Only the buffer length is checked here; use [`OfpHeader::validate`]
    /// to enforce version/length sanity.
    pub fn parse(buf: &[u8]) -> Result<OfpHeader> {
        if buf.len() < Self::SIZE {
            return Err(OfError::Truncated);
        }
        Ok(OfpHeader {
            version: buf[0],
            typ: buf[1],
            length: u16::from_be_bytes([buf[2], buf[3]]),
            xid: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }

    /// Checks the fields a receiver must reject before trusting `length`:
    /// the version byte and the self-consistency of the length field.
    pub fn validate(&self, max_frame: usize) -> Result<()> {
        if self.version != OFP_VERSION {
            return Err(OfError::BadVersion(self.version));
        }
        let len = usize::from(self.length);
        if len < Self::SIZE {
            return Err(OfError::BadLength);
        }
        if len > max_frame {
            return Err(OfError::Oversized {
                len,
                max: max_frame,
            });
        }
        Ok(())
    }

    /// Total message length as a usize.
    pub fn length(&self) -> usize {
        usize::from(self.length)
    }
}

/// Byte-buffer marshalling API for OpenFlow messages, in the shape of
/// `rust_ofp`'s `OfpMessage` trait: a message knows its wire size, can
/// produce its header, marshal itself (header included) and parse itself
/// back from a header + body pair.
///
/// [`crate::codec::encode`] and [`crate::codec::decode`] are thin wrappers
/// over these methods, kept for call-site convenience.
pub trait OfpMarshal: Sized {
    /// The total wire size (header + body) this message marshals to.
    fn size_of(&self) -> usize;

    /// The header that fronts this message for transaction id `xid`.
    fn header_of(&self, xid: u32) -> OfpHeader;

    /// Marshals the full message (header + body) for `xid`.
    fn marshal(&self, xid: u32) -> Vec<u8>;

    /// Parses a message from an already-validated `header` and its `body`
    /// (the bytes after the header, exactly `header.length() - 8` long).
    /// Returns the message with the header's transaction id.
    fn parse(header: &OfpHeader, body: &[u8]) -> Result<(Self, u32)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = OfpHeader::new(OFP_VERSION, 14, 72, 0xdead_beef);
        let mut bytes = Vec::new();
        h.marshal(&mut bytes);
        assert_eq!(bytes.len(), OfpHeader::SIZE);
        let parsed = OfpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.validate(65535).is_ok());
    }

    #[test]
    fn parse_needs_eight_bytes() {
        assert_eq!(
            OfpHeader::parse(&[1, 2, 3]).unwrap_err(),
            OfError::Truncated
        );
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let bad_version = OfpHeader::new(0x04, 0, 8, 0);
        assert_eq!(
            bad_version.validate(65535).unwrap_err(),
            OfError::BadVersion(0x04)
        );
        let short = OfpHeader::new(OFP_VERSION, 0, 4, 0);
        assert_eq!(short.validate(65535).unwrap_err(), OfError::BadLength);
        let big = OfpHeader::new(OFP_VERSION, 0, 4096, 0);
        assert_eq!(
            big.validate(128).unwrap_err(),
            OfError::Oversized {
                len: 4096,
                max: 128
            }
        );
    }
}
