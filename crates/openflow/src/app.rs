//! Controller applications over the framed channel.
//!
//! A [`ControllerApp`] is the logic half of a controller: it reacts to the
//! switch connecting and to asynchronous messages, issuing requests through
//! the [`Connection`] it is handed. [`ControllerRuntime`] is the event loop
//! half — it drives the handshake, delivers messages and re-announces the
//! switch after a reconnect. The split is what makes the channel API
//! controller-agnostic: the built-in highway steering controller and the
//! [`LearningSwitch`] ported from `rust_ofp` run over byte-identical
//! streams through exactly this interface.

use crate::connection::{Connection, ConnectionState, SwitchFeatures};
use crate::messages::{FlowMod, OfpMessage, PacketIn};
use crate::types::PortNo;
use crate::{Action, FlowMatch, Result};
use packet_wire::{EthernetFrame, MacAddr};
use std::collections::HashMap;
use std::time::Duration;

/// A controller application: policy over a [`Connection`].
pub trait ControllerApp: Send {
    /// Called once per completed handshake — including after each
    /// reconnect — with the switch's advertised features.
    fn on_connected(&mut self, conn: &Connection, features: &SwitchFeatures);

    /// Called for every asynchronous or unclaimed message.
    fn on_message(&mut self, conn: &Connection, msg: OfpMessage, xid: u32);
}

/// Drives one [`ControllerApp`] over one [`Connection`].
pub struct ControllerRuntime<A: ControllerApp> {
    conn: Connection,
    app: A,
    announced: bool,
}

impl<A: ControllerApp> ControllerRuntime<A> {
    /// Binds `app` to a connection (whose handshake is already in flight).
    pub fn new(conn: Connection, app: A) -> ControllerRuntime<A> {
        ControllerRuntime {
            conn,
            app,
            announced: false,
        }
    }

    /// The underlying connection, for direct requests alongside the app.
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// The application, for inspecting its state in tests.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// One scheduling round: advance the handshake, announce the switch to
    /// the app when it completes, deliver queued messages. Returns how
    /// many messages the app saw.
    pub fn poll(&mut self) -> usize {
        if !self.announced && self.conn.state() == ConnectionState::Ready {
            let features = self.conn.features().expect("Ready implies features");
            self.app.on_connected(&self.conn, &features);
            self.announced = true;
        }
        let mut delivered = 0;
        while let Some(res) = self.conn.try_recv() {
            let Ok((msg, xid)) = res else { break };
            self.app.on_message(&self.conn, msg, xid);
            delivered += 1;
            if self.announced && self.conn.state() != ConnectionState::Ready {
                break;
            }
        }
        delivered
    }

    /// Polls until the handshake completes and the app has been announced.
    pub fn run_until_ready(&mut self, timeout: Duration) -> Result<()> {
        self.conn.handshake(timeout)?;
        self.poll();
        Ok(())
    }

    /// Moves the session to a fresh transport (controller restart): the
    /// connection re-handshakes and replays un-barriered flow mods, and the
    /// app is announced again on the next [`ControllerRuntime::poll`].
    pub fn reconnect(&mut self, transport: Box<dyn crate::transport::Transport>) {
        self.conn.reconnect(transport);
        self.announced = false;
    }
}

/// `rust_ofp`'s learning switch, ported to the [`ControllerApp`] API.
///
/// Learns the source MAC of every packet-in against its ingress port.
/// Once both endpoints of a conversation are known it installs the flow in
/// both directions (so the reply path is covered before the reply leaves)
/// and re-injects the packet; until then it floods.
pub struct LearningSwitch {
    known: HashMap<MacAddr, PortNo>,
    priority: u16,
    installed: u64,
}

impl Default for LearningSwitch {
    fn default() -> LearningSwitch {
        LearningSwitch::new()
    }
}

impl LearningSwitch {
    pub fn new() -> LearningSwitch {
        LearningSwitch {
            known: HashMap::new(),
            priority: 10,
            installed: 0,
        }
    }

    /// The learned MAC → port table.
    pub fn known_hosts(&self) -> &HashMap<MacAddr, PortNo> {
        &self.known
    }

    /// How many flow-mod pairs this app has installed.
    pub fn flows_installed(&self) -> u64 {
        self.installed
    }

    fn learning_packet_in(&mut self, conn: &Connection, pi: &PacketIn) {
        let Ok(frame) = EthernetFrame::new_checked(&pi.data[..]) else {
            return; // not Ethernet; nothing to learn
        };
        let src = frame.src_addr();
        let dst = frame.dst_addr();
        if !src.is_multicast() {
            self.known.insert(src, pi.in_port);
        }
        match (!dst.is_multicast())
            .then(|| self.known.get(&dst))
            .flatten()
        {
            Some(&out_port) => {
                // Both directions in one batched write, then re-inject the
                // triggering packet so it is not lost while rules settle.
                let fwd = FlowMod::add(
                    FlowMatch::eth_pair(src, dst),
                    self.priority,
                    vec![Action::Output(out_port)],
                );
                let rev = FlowMod::add(
                    FlowMatch::eth_pair(dst, src),
                    self.priority,
                    vec![Action::Output(pi.in_port)],
                );
                if conn.send_flow_mods(&[fwd, rev]).is_ok() {
                    self.installed += 2;
                }
                let _ = conn.packet_out(pi.data.clone(), vec![Action::Output(out_port)]);
            }
            None => {
                let _ = conn.packet_out(pi.data.clone(), vec![Action::Output(PortNo::FLOOD)]);
            }
        }
    }
}

impl ControllerApp for LearningSwitch {
    fn on_connected(&mut self, _conn: &Connection, _features: &SwitchFeatures) {
        // A restarted learning switch relearns from scratch; stale entries
        // from the previous session would steer into moved hosts.
        self.known.clear();
    }

    fn on_message(&mut self, conn: &Connection, msg: OfpMessage, _xid: u32) {
        if let OfpMessage::PacketIn(pi) = msg {
            self.learning_packet_in(conn, &pi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{framed_link, SwitchLink};
    use packet_wire::PacketBuilder;

    fn answer_control(sw: &SwitchLink) -> Vec<(OfpMessage, u32)> {
        let mut unhandled = Vec::new();
        while let Some(Ok((msg, xid))) = sw.try_recv() {
            match msg {
                OfpMessage::Hello => sw.send(&OfpMessage::Hello, xid).unwrap(),
                OfpMessage::FeaturesRequest => sw
                    .send(
                        &OfpMessage::FeaturesReply {
                            datapath_id: 7,
                            ports: vec![1, 2],
                        },
                        xid,
                    )
                    .unwrap(),
                other => unhandled.push((other, xid)),
            }
        }
        unhandled
    }

    fn packet(src: MacAddr, dst: MacAddr) -> Vec<u8> {
        PacketBuilder::udp_probe(64).eth(src, dst).build()
    }

    #[test]
    fn learning_switch_floods_then_installs_both_directions() {
        let (conn, sw) = framed_link();
        answer_control(&sw);
        let mut rt = ControllerRuntime::new(conn, LearningSwitch::new());
        rt.run_until_ready(Duration::from_secs(1)).unwrap();

        let a = MacAddr::local(1);
        let b = MacAddr::local(2);

        // a → b: b unknown, expect a flood and a learned entry for a.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(1),
                reason: crate::messages::PacketInReason::NoMatch,
                data: packet(a, b),
            }),
            0,
        )
        .unwrap();
        rt.poll();
        let out = answer_control(&sw);
        assert_eq!(out.len(), 1);
        match &out[0].0 {
            OfpMessage::PacketOut(po) => {
                assert_eq!(po.actions, vec![Action::Output(PortNo::FLOOD)])
            }
            other => panic!("expected flood packet-out, got {other:?}"),
        }
        assert_eq!(rt.app().known_hosts().get(&a), Some(&PortNo(1)));

        // b → a: both known now — two flow mods + a directed packet-out.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(2),
                reason: crate::messages::PacketInReason::NoMatch,
                data: packet(b, a),
            }),
            0,
        )
        .unwrap();
        rt.poll();
        let out = answer_control(&sw);
        let flow_mods: Vec<&FlowMod> = out
            .iter()
            .filter_map(|(m, _)| match m {
                OfpMessage::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect();
        assert_eq!(flow_mods.len(), 2);
        assert_eq!(flow_mods[0].actions, vec![Action::Output(PortNo(1))]);
        assert_eq!(flow_mods[1].actions, vec![Action::Output(PortNo(2))]);
        assert!(out.iter().any(|(m, _)| matches!(
            m,
            OfpMessage::PacketOut(po) if po.actions == vec![Action::Output(PortNo(1))]
        )));
        assert_eq!(rt.app().flows_installed(), 2);
    }

    #[test]
    fn runtime_reannounces_after_reconnect() {
        struct Counting {
            connects: usize,
        }
        impl ControllerApp for Counting {
            fn on_connected(&mut self, _c: &Connection, _f: &SwitchFeatures) {
                self.connects += 1;
            }
            fn on_message(&mut self, _c: &Connection, _m: OfpMessage, _x: u32) {}
        }

        let (conn, sw) = framed_link();
        answer_control(&sw);
        let mut rt = ControllerRuntime::new(conn, Counting { connects: 0 });
        rt.run_until_ready(Duration::from_secs(1)).unwrap();
        assert_eq!(rt.app().connects, 1);

        drop(sw);
        let _ = rt.connection().try_recv(); // notice the disconnect

        let (c2, s2) = crate::transport::loopback();
        rt.reconnect(Box::new(c2));
        let sw2 = SwitchLink::new(Box::new(s2));
        answer_control(&sw2);
        rt.connection().handshake(Duration::from_secs(1)).unwrap();
        rt.poll();
        assert_eq!(rt.app().connects, 2);
    }
}
