//! Controller applications over the framed channel.
//!
//! A [`ControllerApp`] is the logic half of a controller: it reacts to the
//! switch connecting and to asynchronous messages, issuing requests through
//! the [`Connection`] it is handed. [`ControllerRuntime`] is the event loop
//! half — it drives the handshake, delivers messages and re-announces the
//! switch after a reconnect. The split is what makes the channel API
//! controller-agnostic: the built-in highway steering controller and the
//! [`LearningSwitch`] ported from `rust_ofp` run over byte-identical
//! streams through exactly this interface.
//!
//! [`FabricRuntime`] is the multi-switch generalisation: one event loop
//! multiplexing N live connections with a per-switch datapath-id
//! registry, fair round-robin polling (a chatty switch cannot starve the
//! rest), per-switch barrier/replay state (each [`Connection`] already
//! owns its own), and optional replication to a standby peer via
//! [`crate::failover::ActivePeer`].

use crate::connection::{Connection, ConnectionState, SwitchFeatures};
use crate::failover::ActivePeer;
use crate::messages::{FlowMod, OfpMessage, PacketIn};
use crate::types::PortNo;
use crate::{Action, FlowMatch, OfError, Result};
use packet_wire::{EthernetFrame, MacAddr};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A controller application: policy over a [`Connection`].
pub trait ControllerApp: Send {
    /// Called once per completed handshake — including after each
    /// reconnect — with the switch's advertised features.
    fn on_connected(&mut self, conn: &Connection, features: &SwitchFeatures);

    /// Called for every asynchronous or unclaimed message.
    fn on_message(&mut self, conn: &Connection, msg: OfpMessage, xid: u32);
}

/// Drives one [`ControllerApp`] over one [`Connection`].
pub struct ControllerRuntime<A: ControllerApp> {
    conn: Connection,
    app: A,
    announced: bool,
}

impl<A: ControllerApp> ControllerRuntime<A> {
    /// Binds `app` to a connection (whose handshake is already in flight).
    pub fn new(conn: Connection, app: A) -> ControllerRuntime<A> {
        ControllerRuntime {
            conn,
            app,
            announced: false,
        }
    }

    /// The underlying connection, for direct requests alongside the app.
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// The application, for inspecting its state in tests.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// One scheduling round: advance the handshake, announce the switch to
    /// the app when it completes, deliver queued messages. Returns how
    /// many messages the app saw.
    pub fn poll(&mut self) -> usize {
        if !self.announced && self.conn.state() == ConnectionState::Ready {
            let features = self.conn.features().expect("Ready implies features");
            self.app.on_connected(&self.conn, &features);
            self.announced = true;
        }
        let mut delivered = 0;
        while let Some(res) = self.conn.try_recv() {
            let Ok((msg, xid)) = res else { break };
            self.app.on_message(&self.conn, msg, xid);
            delivered += 1;
            if self.announced && self.conn.state() != ConnectionState::Ready {
                break;
            }
        }
        delivered
    }

    /// Polls until the handshake completes and the app has been announced.
    pub fn run_until_ready(&mut self, timeout: Duration) -> Result<()> {
        self.conn.handshake(timeout)?;
        self.poll();
        Ok(())
    }

    /// Moves the session to a fresh transport (controller restart): the
    /// connection re-handshakes and replays un-barriered flow mods, and the
    /// app is announced again on the next [`ControllerRuntime::poll`].
    pub fn reconnect(&mut self, transport: Box<dyn crate::transport::Transport>) {
        self.conn.reconnect(transport);
        self.announced = false;
    }
}

/// A controller application over a whole fabric of switches: the same
/// role as [`ControllerApp`], with the switch's datapath id threaded
/// through every callback so policy can differ per switch.
pub trait FabricApp: Send {
    /// Called once per switch per completed handshake (including after a
    /// reconnect or takeover).
    fn on_switch_ready(&mut self, dpid: u64, conn: &Connection, features: &SwitchFeatures);

    /// Called for every asynchronous or unclaimed message from `dpid`.
    fn on_switch_message(&mut self, dpid: u64, conn: &Connection, msg: OfpMessage, xid: u32);

    /// Called once when a switch's connection dies (transport error or
    /// keepalive). The session stays registered; a reconnect re-announces.
    fn on_switch_down(&mut self, _dpid: u64) {}
}

struct FabricSession {
    conn: Connection,
    /// Set at announce time, from the switch's `FeaturesReply`.
    dpid: Option<u64>,
    /// Whether `on_switch_down` has fired for the current disconnect.
    down_reported: bool,
}

/// Drives one [`FabricApp`] over N live [`Connection`]s.
///
/// * **datapath-id registry** — switches announce themselves through the
///   handshake's `FeaturesReply`; [`FabricRuntime::connection`] resolves
///   a dpid to its live connection.
/// * **fair polling** — each [`FabricRuntime::poll`] round visits every
///   switch starting from a rotating cursor and delivers at most
///   [`FabricRuntime::MAX_PER_SWITCH`] messages per switch, so one busy
///   switch cannot starve the others.
/// * **per-switch barrier/replay state** — each [`Connection`] carries
///   its own replay log and barrier marks; nothing is shared.
/// * **failover replication** — with [`FabricRuntime::with_peer`], every
///   switch's replay log is mirrored to the standby the moment the
///   switch is announced, and heartbeats ride the poll loop.
pub struct FabricRuntime<A: FabricApp> {
    switches: Vec<FabricSession>,
    by_dpid: HashMap<u64, usize>,
    app: A,
    cursor: usize,
    peer: Option<ActivePeer>,
}

impl<A: FabricApp> FabricRuntime<A> {
    /// Fairness bound: messages delivered per switch per poll round.
    pub const MAX_PER_SWITCH: usize = 16;

    /// A fabric runtime with no standby replication.
    pub fn new(app: A) -> FabricRuntime<A> {
        FabricRuntime {
            switches: Vec::new(),
            by_dpid: HashMap::new(),
            app,
            cursor: 0,
            peer: None,
        }
    }

    /// A fabric runtime that replicates every switch's replay log to a
    /// standby controller (see [`crate::failover`]).
    pub fn with_peer(app: A, peer: ActivePeer) -> FabricRuntime<A> {
        FabricRuntime {
            peer: Some(peer),
            ..FabricRuntime::new(app)
        }
    }

    /// Adds a switch connection (handshake may still be in flight — a
    /// fresh [`Connection`] works, and so does an already-ready one
    /// adopted from [`crate::failover::StandbyController::take_over`]).
    /// Returns the session index.
    pub fn add_switch(&mut self, conn: Connection) -> usize {
        self.switches.push(FabricSession {
            conn,
            dpid: None,
            down_reported: false,
        });
        self.switches.len() - 1
    }

    /// Number of registered switch sessions.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Datapath ids of every announced switch, sorted.
    pub fn dpids(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.by_dpid.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// The live connection for `dpid`, if that switch has announced.
    pub fn connection(&self, dpid: u64) -> Option<&Connection> {
        self.by_dpid.get(&dpid).map(|&i| &self.switches[i].conn)
    }

    /// The application, for inspecting its state.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// One fair scheduling round over every switch; returns the number of
    /// messages delivered to the app.
    pub fn poll(&mut self) -> usize {
        if let Some(peer) = &self.peer {
            peer.maybe_heartbeat();
        }
        let n = self.switches.len();
        if n == 0 {
            return 0;
        }
        let mut delivered = 0;
        for off in 0..n {
            let i = (self.cursor + off) % n;
            delivered += self.poll_one(i);
        }
        self.cursor = (self.cursor + 1) % n;
        delivered
    }

    fn poll_one(&mut self, i: usize) -> usize {
        if self.switches[i].dpid.is_none() {
            // Advance the handshake without consuming the inbox — async
            // messages that race the announce stay queued for delivery
            // right after it.
            let _ = self.switches[i].conn.poll_io();
            if self.switches[i].conn.state() == ConnectionState::Ready {
                let features = self.switches[i]
                    .conn
                    .features()
                    .expect("Ready implies features");
                let dpid = features.datapath_id;
                self.by_dpid.insert(dpid, i);
                self.switches[i].dpid = Some(dpid);
                self.switches[i].down_reported = false;
                if let Some(peer) = &self.peer {
                    // Replication must be live before the app's first flow
                    // mod, which on_switch_ready typically sends.
                    peer.announce_switch(dpid);
                    self.switches[i]
                        .conn
                        .set_replay_observer(peer.sink_for(dpid));
                }
                let session = &self.switches[i];
                self.app.on_switch_ready(dpid, &session.conn, &features);
            }
        }
        let mut delivered = 0;
        if self.switches[i].dpid.is_some() {
            while delivered < Self::MAX_PER_SWITCH {
                let Some(res) = self.switches[i].conn.try_recv() else {
                    break;
                };
                let Ok((msg, xid)) = res else { break };
                let dpid = self.switches[i].dpid.expect("checked above");
                self.app
                    .on_switch_message(dpid, &self.switches[i].conn, msg, xid);
                delivered += 1;
            }
        }
        if self.switches[i].conn.state() == ConnectionState::Disconnected
            && !self.switches[i].down_reported
        {
            self.switches[i].down_reported = true;
            if let Some(dpid) = self.switches[i].dpid {
                self.app.on_switch_down(dpid);
            }
        }
        delivered
    }

    /// Polls until every registered switch has completed its handshake
    /// and been announced to the app. Fails if any switch disconnects
    /// first or `timeout` passes.
    pub fn run_until_ready(&mut self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll();
            if self.switches.iter().all(|s| s.dpid.is_some()) {
                return Ok(());
            }
            if self
                .switches
                .iter()
                .any(|s| s.conn.state() == ConnectionState::Disconnected)
            {
                return Err(OfError::Disconnected);
            }
            if Instant::now() >= deadline {
                return Err(OfError::Disconnected);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Moves one switch's session to a fresh transport (switch restart or
    /// network blip): the connection re-handshakes, replays un-barriered
    /// flow mods, and the app is re-announced on a later poll.
    pub fn reconnect(
        &mut self,
        dpid: u64,
        transport: Box<dyn crate::transport::Transport>,
    ) -> bool {
        let Some(&i) = self.by_dpid.get(&dpid) else {
            return false;
        };
        self.switches[i].conn.reconnect(transport);
        self.switches[i].dpid = None;
        self.switches[i].down_reported = false;
        self.by_dpid.remove(&dpid);
        true
    }
}

/// `rust_ofp`'s learning switch, ported to the [`ControllerApp`] API.
///
/// Learns the source MAC of every packet-in against its ingress port.
/// Once both endpoints of a conversation are known it installs the flow in
/// both directions (so the reply path is covered before the reply leaves)
/// and re-injects the packet; until then it floods.
pub struct LearningSwitch {
    known: HashMap<MacAddr, PortNo>,
    priority: u16,
    installed: u64,
}

impl Default for LearningSwitch {
    fn default() -> LearningSwitch {
        LearningSwitch::new()
    }
}

impl LearningSwitch {
    pub fn new() -> LearningSwitch {
        LearningSwitch {
            known: HashMap::new(),
            priority: 10,
            installed: 0,
        }
    }

    /// The learned MAC → port table.
    pub fn known_hosts(&self) -> &HashMap<MacAddr, PortNo> {
        &self.known
    }

    /// How many flow-mod pairs this app has installed.
    pub fn flows_installed(&self) -> u64 {
        self.installed
    }

    fn learning_packet_in(&mut self, conn: &Connection, pi: &PacketIn) {
        let Ok(frame) = EthernetFrame::new_checked(&pi.data[..]) else {
            return; // not Ethernet; nothing to learn
        };
        let src = frame.src_addr();
        let dst = frame.dst_addr();
        if !src.is_multicast() {
            self.known.insert(src, pi.in_port);
        }
        match (!dst.is_multicast())
            .then(|| self.known.get(&dst))
            .flatten()
        {
            Some(&out_port) => {
                // Both directions in one batched write, then re-inject the
                // triggering packet so it is not lost while rules settle.
                let fwd = FlowMod::add(
                    FlowMatch::eth_pair(src, dst),
                    self.priority,
                    vec![Action::Output(out_port)],
                );
                let rev = FlowMod::add(
                    FlowMatch::eth_pair(dst, src),
                    self.priority,
                    vec![Action::Output(pi.in_port)],
                );
                if conn.send_flow_mods(&[fwd, rev]).is_ok() {
                    self.installed += 2;
                }
                let _ = conn.packet_out(pi.data.clone(), vec![Action::Output(out_port)]);
            }
            None => {
                let _ = conn.packet_out(pi.data.clone(), vec![Action::Output(PortNo::FLOOD)]);
            }
        }
    }
}

impl ControllerApp for LearningSwitch {
    fn on_connected(&mut self, _conn: &Connection, _features: &SwitchFeatures) {
        // A restarted learning switch relearns from scratch; stale entries
        // from the previous session would steer into moved hosts.
        self.known.clear();
    }

    fn on_message(&mut self, conn: &Connection, msg: OfpMessage, _xid: u32) {
        if let OfpMessage::PacketIn(pi) = msg {
            self.learning_packet_in(conn, &pi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{framed_link, SwitchLink};
    use packet_wire::PacketBuilder;

    fn answer_control(sw: &SwitchLink) -> Vec<(OfpMessage, u32)> {
        let mut unhandled = Vec::new();
        while let Some(Ok((msg, xid))) = sw.try_recv() {
            match msg {
                OfpMessage::Hello => sw.send(&OfpMessage::Hello, xid).unwrap(),
                OfpMessage::FeaturesRequest => sw
                    .send(
                        &OfpMessage::FeaturesReply {
                            datapath_id: 7,
                            ports: vec![1, 2],
                        },
                        xid,
                    )
                    .unwrap(),
                other => unhandled.push((other, xid)),
            }
        }
        unhandled
    }

    fn packet(src: MacAddr, dst: MacAddr) -> Vec<u8> {
        PacketBuilder::udp_probe(64).eth(src, dst).build()
    }

    #[test]
    fn learning_switch_floods_then_installs_both_directions() {
        let (conn, sw) = framed_link();
        answer_control(&sw);
        let mut rt = ControllerRuntime::new(conn, LearningSwitch::new());
        rt.run_until_ready(Duration::from_secs(1)).unwrap();

        let a = MacAddr::local(1);
        let b = MacAddr::local(2);

        // a → b: b unknown, expect a flood and a learned entry for a.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(1),
                reason: crate::messages::PacketInReason::NoMatch,
                data: packet(a, b),
            }),
            0,
        )
        .unwrap();
        rt.poll();
        let out = answer_control(&sw);
        assert_eq!(out.len(), 1);
        match &out[0].0 {
            OfpMessage::PacketOut(po) => {
                assert_eq!(po.actions, vec![Action::Output(PortNo::FLOOD)])
            }
            other => panic!("expected flood packet-out, got {other:?}"),
        }
        assert_eq!(rt.app().known_hosts().get(&a), Some(&PortNo(1)));

        // b → a: both known now — two flow mods + a directed packet-out.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(2),
                reason: crate::messages::PacketInReason::NoMatch,
                data: packet(b, a),
            }),
            0,
        )
        .unwrap();
        rt.poll();
        let out = answer_control(&sw);
        let flow_mods: Vec<&FlowMod> = out
            .iter()
            .filter_map(|(m, _)| match m {
                OfpMessage::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect();
        assert_eq!(flow_mods.len(), 2);
        assert_eq!(flow_mods[0].actions, vec![Action::Output(PortNo(1))]);
        assert_eq!(flow_mods[1].actions, vec![Action::Output(PortNo(2))]);
        assert!(out.iter().any(|(m, _)| matches!(
            m,
            OfpMessage::PacketOut(po) if po.actions == vec![Action::Output(PortNo(1))]
        )));
        assert_eq!(rt.app().flows_installed(), 2);
    }

    /// Answers handshake traffic with a chosen dpid and counts flow mods.
    fn answer_switch(sw: &SwitchLink, dpid: u64) -> Vec<(OfpMessage, u32)> {
        let mut unhandled = Vec::new();
        while let Some(Ok((msg, xid))) = sw.try_recv() {
            match msg {
                OfpMessage::Hello => sw.send(&OfpMessage::Hello, xid).unwrap(),
                OfpMessage::FeaturesRequest => sw
                    .send(
                        &OfpMessage::FeaturesReply {
                            datapath_id: dpid,
                            ports: vec![1],
                        },
                        xid,
                    )
                    .unwrap(),
                OfpMessage::EchoRequest(d) => sw.send(&OfpMessage::EchoReply(d), xid).unwrap(),
                OfpMessage::BarrierRequest => sw.send(&OfpMessage::BarrierReply, xid).unwrap(),
                other => unhandled.push((other, xid)),
            }
        }
        unhandled
    }

    #[derive(Default)]
    struct FabricProbe {
        ready: Vec<u64>,
        messages: Vec<(u64, u32)>,
        downs: Vec<u64>,
    }

    impl FabricApp for FabricProbe {
        fn on_switch_ready(&mut self, dpid: u64, _c: &Connection, f: &SwitchFeatures) {
            assert_eq!(dpid, f.datapath_id);
            self.ready.push(dpid);
        }
        fn on_switch_message(&mut self, dpid: u64, _c: &Connection, _m: OfpMessage, xid: u32) {
            self.messages.push((dpid, xid));
        }
        fn on_switch_down(&mut self, dpid: u64) {
            self.downs.push(dpid);
        }
    }

    #[test]
    fn fabric_runtime_registers_and_dispatches_per_dpid() {
        let (c1, sw1) = framed_link();
        let (c2, sw2) = framed_link();
        let mut rt = FabricRuntime::new(FabricProbe::default());
        rt.add_switch(c1);
        rt.add_switch(c2);
        answer_switch(&sw1, 0xa1);
        answer_switch(&sw2, 0xb2);
        rt.run_until_ready(Duration::from_secs(2)).unwrap();
        assert_eq!(rt.dpids(), vec![0xa1, 0xb2]);
        assert_eq!(rt.app().ready, vec![0xa1, 0xb2]);

        // Messages route to the app tagged with the right dpid.
        sw2.send(&OfpMessage::EchoReply(vec![1]), 7001).unwrap();
        sw1.send(&OfpMessage::EchoReply(vec![2]), 7002).unwrap();
        rt.poll();
        let mut got = rt.app().messages.clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0xa1, 7002), (0xb2, 7001)]);

        // Per-dpid connection lookup drives the right switch.
        rt.connection(0xb2)
            .unwrap()
            .send(&OfpMessage::EchoRequest(vec![9]))
            .unwrap();
        assert_eq!(answer_switch(&sw1, 0xa1).len(), 0);
        drop(sw2); // also: the down event fires exactly once
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while rt.app().downs.is_empty() && std::time::Instant::now() < deadline {
            rt.poll();
        }
        assert_eq!(rt.app().downs, vec![0xb2]);
        rt.poll();
        assert_eq!(rt.app().downs, vec![0xb2], "down reported once");
    }

    #[test]
    fn fabric_polling_is_fair_under_one_chatty_switch() {
        let (c1, sw1) = framed_link();
        let (c2, sw2) = framed_link();
        let mut rt = FabricRuntime::new(FabricProbe::default());
        rt.add_switch(c1);
        rt.add_switch(c2);
        answer_switch(&sw1, 0xa1);
        answer_switch(&sw2, 0xb2);
        rt.run_until_ready(Duration::from_secs(2)).unwrap();

        // Switch a1 floods 200 messages; b2 sends one. One poll round may
        // deliver at most MAX_PER_SWITCH from the flooder, and b2's
        // message must be in the same round — not behind the flood.
        for i in 0..200u32 {
            sw1.send(&OfpMessage::EchoReply(vec![0]), 10_000 + i)
                .unwrap();
        }
        sw2.send(&OfpMessage::EchoReply(vec![1]), 42).unwrap();
        let delivered = rt.poll();
        assert!(
            delivered <= 2 * FabricRuntime::<FabricProbe>::MAX_PER_SWITCH,
            "round bounded per switch"
        );
        assert!(
            rt.app()
                .messages
                .iter()
                .any(|(d, x)| (*d, *x) == (0xb2, 42)),
            "the quiet switch was served in the same round"
        );
    }

    #[test]
    fn runtime_reannounces_after_reconnect() {
        struct Counting {
            connects: usize,
        }
        impl ControllerApp for Counting {
            fn on_connected(&mut self, _c: &Connection, _f: &SwitchFeatures) {
                self.connects += 1;
            }
            fn on_message(&mut self, _c: &Connection, _m: OfpMessage, _x: u32) {}
        }

        let (conn, sw) = framed_link();
        answer_control(&sw);
        let mut rt = ControllerRuntime::new(conn, Counting { connects: 0 });
        rt.run_until_ready(Duration::from_secs(1)).unwrap();
        assert_eq!(rt.app().connects, 1);

        drop(sw);
        let _ = rt.connection().try_recv(); // notice the disconnect

        let (c2, s2) = crate::transport::loopback();
        rt.reconnect(Box::new(c2));
        let sw2 = SwitchLink::new(Box::new(s2));
        answer_control(&sw2);
        rt.connection().handshake(Duration::from_secs(1)).unwrap();
        rt.poll();
        assert_eq!(rt.app().connects, 2);
    }
}
