//! The controller-side connection state machine.
//!
//! [`Connection`] owns a [`crate::transport::Transport`] and drives the
//! OF 1.0 session over it the way a real controller does:
//!
//! * **handshake** — `Hello` is sent on connect, with a pipelined
//!   `FeaturesRequest` right behind it (legal in OF 1.0: version
//!   negotiation succeeds iff the version bytes agree, and the switch
//!   processes the stream in order). The state machine advances
//!   `HelloSent → FeaturesSent → Ready` as the replies arrive;
//! * **xid pairing** — every request carries a fresh transaction id and
//!   [`Connection::wait_reply`] pairs replies to requests, stashing
//!   asynchronous messages (packet-ins, port-status) for later delivery;
//! * **echo keepalive** — in steady state an `EchoRequest` probes the
//!   switch when the link has been quiet; a missing reply marks the
//!   connection dead instead of hanging callers forever;
//! * **barrier semantics** — barrier replies double as delivery
//!   acknowledgements for every flow mod sent before them;
//! * **flow-mod batching** — [`Connection::send_flow_mods`] marshals a
//!   whole batch into one transport write;
//! * **reconnect-with-replay** — flow mods not yet covered by a barrier
//!   reply survive in a replay log; [`Connection::reconnect`] re-runs the
//!   handshake on a fresh transport and replays them, so a controller
//!   restart mid-update loses nothing.

use crate::codec::encode;
use crate::framer::Framer;
use crate::messages::*;
use crate::transport::Transport;
use crate::types::PortNo;
use crate::{Action, FlowMatch, OfError, Result};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observes replay-log transitions on a [`Connection`] — the hook the
/// active/standby replication in [`crate::failover`] attaches so a peer
/// controller mirrors the un-barriered flow mods in real time.
///
/// Callbacks run with the connection's internal locks held: an observer
/// must never call back into the same `Connection` (writing to an
/// unrelated transport, as the replication sink does, is fine).
pub trait ReplayObserver: Send + Sync {
    /// `fm` was appended to the replay log as entry `seq`.
    fn logged(&self, seq: u64, fm: &FlowMod);

    /// A barrier reply retired every log entry with `seq <= acked_seq`.
    fn retired(&self, acked_seq: u64);
}

/// Where the session stands in the OF 1.0 connection setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionState {
    /// `Hello` sent, peer's `Hello` not yet seen.
    HelloSent,
    /// Versions agreed; waiting for the `FeaturesReply`.
    FeaturesSent,
    /// Handshake complete — steady state.
    Ready,
    /// The transport failed or the keepalive gave up.
    Disconnected,
}

/// What the switch reported in its `FeaturesReply`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchFeatures {
    pub datapath_id: u64,
    pub ports: Vec<u16>,
}

/// Everything guarded by the I/O lock: the byte stream and the
/// handshake/keepalive state that only the stream can advance.
struct Io {
    transport: Box<dyn Transport>,
    framer: Framer,
    /// Bytes accepted by `send_*` but not yet taken by the transport
    /// (partial writes).
    wbuf: Vec<u8>,
    state: ConnectionState,
    fatal: Option<OfError>,
    features: Option<SwitchFeatures>,
    features_xid: u32,
    /// Internal keepalive echoes whose replies are swallowed.
    internal_echo: HashSet<u32>,
    echo_sent: Option<Instant>,
    last_io: Instant,
}

/// Flow mods awaiting barrier acknowledgement, for replay on reconnect.
#[derive(Default)]
struct Replay {
    /// Monotone counter of flow mods ever sent.
    seq: u64,
    /// `(seq, flow_mod)` not yet covered by a barrier reply.
    pending: VecDeque<(u64, FlowMod)>,
    /// Outstanding barriers as `(xid, seq at send time)` — a reply to
    /// `xid` acknowledges every pending entry with `seq <=` the mark.
    marks: Vec<(u32, u64)>,
    /// Barriers the connection itself appended after a replay; their
    /// replies are swallowed rather than delivered.
    internal_barriers: HashSet<u32>,
}

/// The controller's end of a framed OpenFlow control channel.
///
/// Every typed helper of the pre-wire channel API (`add_flow`, `barrier`,
/// `flow_stats`, …) lives here, now running over real framed bytes.
pub struct Connection {
    io: Mutex<Io>,
    replay: Mutex<Replay>,
    /// Asynchronous / not-yet-claimed messages, oldest first.
    inbox: Mutex<VecDeque<(OfpMessage, u32)>>,
    next_xid: AtomicU32,
    keepalive_interval: Duration,
    keepalive_timeout: Duration,
    /// Callers currently blocked in [`Connection::wait_reply`]; while any
    /// are, the keepalive neither probes nor times out (see `keepalive`).
    waiters: AtomicUsize,
    /// Replication hook for active/standby failover (see [`ReplayObserver`]).
    observer: Mutex<Option<Arc<dyn ReplayObserver>>>,
}

impl Connection {
    /// Opens a connection over `transport` and immediately starts the
    /// handshake (`Hello` + pipelined `FeaturesRequest`, one write).
    pub fn new(transport: Box<dyn Transport>) -> Connection {
        let conn = Connection {
            io: Mutex::new(Io {
                transport,
                framer: Framer::new(),
                wbuf: Vec::new(),
                state: ConnectionState::HelloSent,
                fatal: None,
                features: None,
                features_xid: 0,
                internal_echo: HashSet::new(),
                echo_sent: None,
                last_io: Instant::now(),
            }),
            replay: Mutex::new(Replay::default()),
            inbox: Mutex::new(VecDeque::new()),
            next_xid: AtomicU32::new(1),
            keepalive_interval: Duration::from_secs(5),
            keepalive_timeout: Duration::from_secs(15),
            waiters: AtomicUsize::new(0),
            observer: Mutex::new(None),
        };
        let hello_xid = conn.xid();
        let features_xid = conn.xid();
        {
            let mut io = conn.io.lock();
            io.features_xid = features_xid;
            let mut bytes = encode(&OfpMessage::Hello, hello_xid);
            bytes.extend(encode(&OfpMessage::FeaturesRequest, features_xid));
            let _ = write_bytes(&mut io, &bytes);
        }
        conn
    }

    /// Overrides the echo keepalive cadence (probe after `interval` of
    /// silence, declare the peer dead `timeout` after an unanswered probe).
    pub fn set_keepalive(&mut self, interval: Duration, timeout: Duration) {
        self.keepalive_interval = interval;
        self.keepalive_timeout = timeout;
    }

    fn xid(&self) -> u32 {
        self.next_xid.fetch_add(1, Ordering::Relaxed)
    }

    /// Current handshake state.
    pub fn state(&self) -> ConnectionState {
        self.io.lock().state
    }

    /// The switch's `FeaturesReply` contents, once [`ConnectionState::Ready`].
    pub fn features(&self) -> Option<SwitchFeatures> {
        self.io.lock().features.clone()
    }

    /// Flow mods not yet acknowledged by a barrier (would be replayed on
    /// [`Connection::reconnect`]).
    pub fn unacked_flow_mods(&self) -> usize {
        self.replay.lock().pending.len()
    }

    /// Attaches a [`ReplayObserver`] that mirrors replay-log transitions —
    /// every logged flow mod and every barrier retirement — from now on.
    /// One observer at a time; setting replaces the previous one.
    pub fn set_replay_observer(&self, observer: Arc<dyn ReplayObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// Drives the handshake until [`ConnectionState::Ready`] or `timeout`.
    pub fn handshake(&self, timeout: Duration) -> Result<SwitchFeatures> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump()?;
            {
                let io = self.io.lock();
                if io.state == ConnectionState::Ready {
                    return Ok(io.features.clone().expect("Ready implies features"));
                }
                if io.state == ConnectionState::Disconnected {
                    return Err(io.fatal.clone().unwrap_or(OfError::Disconnected));
                }
            }
            if Instant::now() >= deadline {
                return Err(OfError::Disconnected);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Re-runs the session on a fresh transport after the old one died:
    /// resets framing state, re-handshakes, then replays every
    /// un-barriered flow mod followed by an internal barrier whose reply
    /// (not delivered to the caller) retires the replay log.
    pub fn reconnect(&self, transport: Box<dyn Transport>) {
        let mut io = self.io.lock();
        let mut replay = self.replay.lock();
        io.transport = transport;
        io.framer.reset();
        io.wbuf.clear();
        io.state = ConnectionState::HelloSent;
        io.fatal = None;
        io.features = None;
        io.internal_echo.clear();
        io.echo_sent = None;
        io.last_io = Instant::now();

        let hello_xid = self.xid();
        let features_xid = self.xid();
        io.features_xid = features_xid;
        let mut bytes = encode(&OfpMessage::Hello, hello_xid);
        bytes.extend(encode(&OfpMessage::FeaturesRequest, features_xid));

        // Replies to barriers sent over the dead transport will never
        // arrive; the pending entries they covered stay in the log and are
        // replayed now, exactly once per reconnect.
        replay.marks.clear();
        replay.internal_barriers.clear();
        for (_seq, fm) in replay.pending.iter() {
            bytes.extend(encode(&OfpMessage::FlowMod(fm.clone()), self.xid()));
        }
        if !replay.pending.is_empty() {
            let barrier_xid = self.xid();
            let seq = replay.seq;
            replay.internal_barriers.insert(barrier_xid);
            replay.marks.push((barrier_xid, seq));
            bytes.extend(encode(&OfpMessage::BarrierRequest, barrier_xid));
        }
        let _ = write_bytes(&mut io, &bytes);
    }

    /// Sends any message, returning the xid used.
    pub fn send(&self, msg: &OfpMessage) -> Result<u32> {
        let xid = self.xid();
        let mut io = self.io.lock();
        let mut logged = None;
        {
            let mut replay = self.replay.lock();
            match msg {
                OfpMessage::FlowMod(fm) => {
                    replay.seq += 1;
                    let seq = replay.seq;
                    replay.pending.push_back((seq, fm.clone()));
                    logged = Some(seq);
                }
                OfpMessage::BarrierRequest => {
                    let seq = replay.seq;
                    replay.marks.push((xid, seq));
                }
                _ => {}
            }
        }
        if let (Some(seq), OfpMessage::FlowMod(fm)) = (logged, msg) {
            // Replicate before the wire write: a crash between the two
            // loses nothing the standby cannot replay.
            if let Some(obs) = self.observer.lock().clone() {
                obs.logged(seq, fm);
            }
        }
        write_bytes(&mut io, &encode(msg, xid))?;
        Ok(xid)
    }

    /// Marshals a whole batch of flow mods into a single transport write.
    pub fn send_flow_mods(&self, mods: &[FlowMod]) -> Result<()> {
        let mut io = self.io.lock();
        let mut bytes = Vec::with_capacity(mods.len() * 80);
        let first_seq;
        {
            let mut replay = self.replay.lock();
            first_seq = replay.seq + 1;
            for fm in mods {
                replay.seq += 1;
                let seq = replay.seq;
                replay.pending.push_back((seq, fm.clone()));
                bytes.extend(encode(&OfpMessage::FlowMod(fm.clone()), self.xid()));
            }
        }
        if let Some(obs) = self.observer.lock().clone() {
            for (i, fm) in mods.iter().enumerate() {
                obs.logged(first_seq + i as u64, fm);
            }
        }
        write_bytes(&mut io, &bytes)
    }

    /// Reads the transport, reassembles frames and dispatches them:
    /// handshake and keepalive traffic is consumed here, everything else
    /// lands in the inbox for [`Connection::try_recv`] / `wait_reply`.
    fn pump(&self) -> Result<()> {
        let mut io = self.io.lock();
        if io.state == ConnectionState::Disconnected {
            return Err(io.fatal.clone().unwrap_or(OfError::Disconnected));
        }
        let _ = flush(&mut io); // opportunistic retry of buffered writes
        let mut chunk = [0u8; 4096];
        loop {
            match io.transport.recv(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    io.last_io = Instant::now();
                    io.framer.push(&chunk[..n]);
                    loop {
                        match io.framer.poll_frame() {
                            Ok(Some(frame)) => match crate::codec::decode(&frame) {
                                Ok((msg, xid)) => self.dispatch(&mut io, msg, xid),
                                Err(e) => return fail(&mut io, e),
                            },
                            Ok(None) => break,
                            // Framing errors are unrecoverable: the stream
                            // position is gone.
                            Err(e) => return fail(&mut io, e),
                        }
                    }
                }
                Err(e) => return fail(&mut io, e),
            }
        }
        self.keepalive(&mut io)
    }

    /// Steady-state liveness probing over the same stream.
    fn keepalive(&self, io: &mut Io) -> Result<()> {
        if io.state != ConnectionState::Ready {
            return Ok(());
        }
        if self.waiters.load(Ordering::Acquire) > 0 {
            // Someone is blocked in `wait_reply` with a deadline of their
            // own. A switch that is slow to answer is not a dead switch:
            // time spent blocked must not count toward dead-peer
            // detection, so the probe clock is pushed forward instead of
            // read. (Real disconnects still surface immediately via the
            // transport errors `pump` observes.)
            if io.echo_sent.is_some() {
                io.echo_sent = Some(Instant::now());
            }
            io.last_io = Instant::now();
            return Ok(());
        }
        if let Some(sent) = io.echo_sent {
            if sent.elapsed() >= self.keepalive_timeout {
                return fail(io, OfError::Disconnected);
            }
        } else if io.last_io.elapsed() >= self.keepalive_interval {
            let xid = self.xid();
            io.internal_echo.insert(xid);
            io.echo_sent = Some(Instant::now());
            let bytes = encode(&OfpMessage::EchoRequest(b"keepalive".to_vec()), xid);
            write_bytes(io, &bytes)?;
        }
        Ok(())
    }

    /// Routes one received message: session traffic is absorbed, the rest
    /// is queued for the caller.
    fn dispatch(&self, io: &mut Io, msg: OfpMessage, xid: u32) {
        match msg {
            OfpMessage::Hello => {
                if io.state == ConnectionState::HelloSent {
                    io.state = ConnectionState::FeaturesSent;
                }
            }
            OfpMessage::FeaturesReply { datapath_id, ports } if xid == io.features_xid => {
                io.features = Some(SwitchFeatures { datapath_id, ports });
                io.state = ConnectionState::Ready;
            }
            OfpMessage::EchoRequest(data) => {
                let bytes = encode(&OfpMessage::EchoReply(data), xid);
                let _ = write_bytes(io, &bytes);
            }
            OfpMessage::EchoReply(_) if io.internal_echo.remove(&xid) => {
                io.echo_sent = None;
            }
            OfpMessage::BarrierReply => {
                let mut retired = None;
                let internal = {
                    let mut replay = self.replay.lock();
                    if let Some(pos) = replay.marks.iter().position(|(x, _)| *x == xid) {
                        let (_, acked_seq) = replay.marks.remove(pos);
                        replay.pending.retain(|(seq, _)| *seq > acked_seq);
                        retired = Some(acked_seq);
                    }
                    replay.internal_barriers.remove(&xid)
                };
                if let Some(acked_seq) = retired {
                    if let Some(obs) = self.observer.lock().clone() {
                        obs.retired(acked_seq);
                    }
                }
                if !internal {
                    self.inbox.lock().push_back((OfpMessage::BarrierReply, xid));
                }
            }
            other => self.inbox.lock().push_back((other, xid)),
        }
    }

    /// Advances the session's I/O without consuming the inbox: flushes
    /// buffered writes, reads the transport, processes handshake and
    /// keepalive traffic. The fabric runtime uses this to drive a
    /// not-yet-announced switch's handshake while leaving queued
    /// asynchronous messages for delivery after the announce.
    pub fn poll_io(&self) -> Result<()> {
        self.pump()
    }

    /// Non-blocking receive of asynchronous messages (packet-in etc.).
    pub fn try_recv(&self) -> Option<Result<(OfpMessage, u32)>> {
        let pump_err = self.pump().err();
        if let Some(m) = self.inbox.lock().pop_front() {
            return Some(Ok(m));
        }
        pump_err.map(Err)
    }

    /// Waits for the reply carrying `xid`, stashing unrelated messages.
    ///
    /// Time spent blocked here does not count toward the echo keepalive's
    /// dead-peer detection — this call has its own `timeout`, and a slow
    /// switch that does eventually answer must not be declared dead under
    /// the caller.
    pub fn wait_reply(&self, xid: u32, timeout: Duration) -> Result<OfpMessage> {
        let _guard = WaiterGuard::enter(&self.waiters);
        let deadline = Instant::now() + timeout;
        loop {
            let pump_err = self.pump().err();
            {
                let mut inbox = self.inbox.lock();
                if let Some(pos) = inbox.iter().position(|(_m, x)| *x == xid) {
                    return Ok(inbox.remove(pos).expect("position exists").0);
                }
            }
            if let Some(e) = pump_err {
                return Err(e);
            }
            if Instant::now() >= deadline {
                return Err(OfError::Disconnected);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Sends `msg` and waits for the xid-paired reply — the one-call form
    /// of the request/reply pattern every stats helper uses.
    pub fn request_reply(&self, msg: &OfpMessage, timeout: Duration) -> Result<OfpMessage> {
        let xid = self.send(msg)?;
        self.wait_reply(xid, timeout)
    }

    /// Installs a flow: `Add` with the given match/priority/actions/cookie.
    pub fn add_flow(
        &self,
        fmatch: FlowMatch,
        priority: u16,
        actions: Vec<Action>,
        cookie: u64,
    ) -> Result<u32> {
        self.send(&OfpMessage::FlowMod(
            FlowMod::add(fmatch, priority, actions).with_cookie(cookie),
        ))
    }

    /// Strict-deletes a flow.
    pub fn del_flow_strict(&self, fmatch: FlowMatch, priority: u16) -> Result<u32> {
        self.send(&OfpMessage::FlowMod(FlowMod::delete_strict(
            fmatch, priority,
        )))
    }

    /// Requests statistics for all flows and waits for the reply.
    pub fn flow_stats(&self, timeout: Duration) -> Result<Vec<FlowStatsEntry>> {
        let req = OfpMessage::FlowStatsRequest(FlowStatsRequest {
            fmatch: FlowMatch::any(),
            out_port: PortNo::NONE,
        });
        match self.request_reply(&req, timeout)? {
            OfpMessage::FlowStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests statistics for all ports and waits for the reply.
    pub fn port_stats(&self, timeout: Duration) -> Result<Vec<PortStatsEntry>> {
        let req = OfpMessage::PortStatsRequest(PortStatsRequest {
            port_no: PortNo::NONE,
        });
        match self.request_reply(&req, timeout)? {
            OfpMessage::PortStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends a barrier and waits for it to complete. The reply also
    /// acknowledges every flow mod sent before it (retiring them from the
    /// replay log).
    pub fn barrier(&self, timeout: Duration) -> Result<()> {
        match self.request_reply(&OfpMessage::BarrierRequest, timeout)? {
            OfpMessage::BarrierReply => Ok(()),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Injects a packet via packet-out.
    pub fn packet_out(&self, data: Vec<u8>, actions: Vec<Action>) -> Result<u32> {
        self.send(&OfpMessage::PacketOut(PacketOut {
            in_port: PortNo::NONE,
            actions,
            data,
        }))
    }

    /// Administratively brings a port down (or back up) via `port_mod`.
    pub fn set_port_down(&self, port_no: PortNo, down: bool) -> Result<u32> {
        self.send(&OfpMessage::PortMod(PortMod { port_no, down }))
    }

    /// Requests aggregate statistics over rules covered by `fmatch`.
    pub fn aggregate_stats(&self, fmatch: FlowMatch, timeout: Duration) -> Result<AggregateStats> {
        let req = OfpMessage::AggregateStatsRequest(AggregateStatsRequest {
            fmatch,
            out_port: PortNo::NONE,
        });
        match self.request_reply(&req, timeout)? {
            OfpMessage::AggregateStatsReply(agg) => Ok(agg),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests per-table statistics.
    pub fn table_stats(&self, timeout: Duration) -> Result<Vec<TableStatsEntry>> {
        match self.request_reply(&OfpMessage::TableStatsRequest, timeout)? {
            OfpMessage::TableStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests the switch description.
    pub fn desc_stats(&self, timeout: Duration) -> Result<DescStats> {
        match self.request_reply(&OfpMessage::DescStatsRequest, timeout)? {
            OfpMessage::DescStatsReply(desc) => Ok(desc),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Drains any queued asynchronous [`PortStatus`] notifications,
    /// stashing unrelated messages for later delivery.
    pub fn drain_port_status(&self) -> Vec<PortStatus> {
        let _ = self.pump();
        let mut out = Vec::new();
        self.inbox.lock().retain(|(msg, _xid)| {
            if let OfpMessage::PortStatus(ps) = msg {
                out.push(ps.clone());
                false
            } else {
                true
            }
        });
        out
    }
}

/// RAII count of callers blocked in `wait_reply` (decremented on every
/// exit path, including panics and early returns).
struct WaiterGuard<'a>(&'a AtomicUsize);

impl<'a> WaiterGuard<'a> {
    fn enter(counter: &'a AtomicUsize) -> WaiterGuard<'a> {
        counter.fetch_add(1, Ordering::AcqRel);
        WaiterGuard(counter)
    }
}

impl Drop for WaiterGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Marks the connection dead with `e` and propagates it.
fn fail(io: &mut Io, e: OfError) -> Result<()> {
    io.state = ConnectionState::Disconnected;
    io.fatal = Some(e.clone());
    Err(e)
}

/// Queues `bytes` and pushes as much as the transport will take.
fn write_bytes(io: &mut Io, bytes: &[u8]) -> Result<()> {
    io.wbuf.extend_from_slice(bytes);
    flush(io)
}

fn flush(io: &mut Io) -> Result<()> {
    while !io.wbuf.is_empty() {
        match io.transport.send(&io.wbuf) {
            Ok(0) => break, // transport saturated; retry on next pump
            Ok(n) => {
                io.wbuf.drain(..n);
                io.last_io = Instant::now();
            }
            Err(e) => return fail(io, e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SwitchLink;
    use crate::transport::{faulty_pair, loopback, FaultConfig};

    /// A minimal in-test switch endpoint: answers handshake traffic the
    /// way `ovs_dp::Ofproto::poll` does.
    fn pump_switch(sw: &SwitchLink) -> Vec<(OfpMessage, u32)> {
        let mut unhandled = Vec::new();
        while let Some(res) = sw.try_recv() {
            let Ok((msg, xid)) = res else { break };
            match msg {
                OfpMessage::Hello => sw.send(&OfpMessage::Hello, xid).unwrap(),
                OfpMessage::FeaturesRequest => sw
                    .send(
                        &OfpMessage::FeaturesReply {
                            datapath_id: 0xd1,
                            ports: vec![1, 2],
                        },
                        xid,
                    )
                    .unwrap(),
                OfpMessage::EchoRequest(d) => sw.send(&OfpMessage::EchoReply(d), xid).unwrap(),
                OfpMessage::BarrierRequest => sw.send(&OfpMessage::BarrierReply, xid).unwrap(),
                other => unhandled.push((other, xid)),
            }
        }
        unhandled
    }

    fn connected() -> (Connection, SwitchLink) {
        let (c, s) = loopback();
        (Connection::new(Box::new(c)), SwitchLink::new(Box::new(s)))
    }

    #[test]
    fn handshake_reaches_ready() {
        let (conn, sw) = connected();
        assert_eq!(conn.state(), ConnectionState::HelloSent);
        pump_switch(&sw);
        let features = conn.handshake(Duration::from_secs(1)).unwrap();
        assert_eq!(features.datapath_id, 0xd1);
        assert_eq!(conn.state(), ConnectionState::Ready);
        assert_eq!(conn.features().unwrap().ports, vec![1, 2]);
    }

    #[test]
    fn barrier_retires_replay_log() {
        let (conn, sw) = connected();
        pump_switch(&sw);
        conn.add_flow(FlowMatch::in_port(PortNo(1)), 10, vec![], 1)
            .unwrap();
        conn.add_flow(FlowMatch::in_port(PortNo(2)), 10, vec![], 2)
            .unwrap();
        assert_eq!(conn.unacked_flow_mods(), 2);
        let t = std::thread::spawn({
            // Answer the barrier from another thread while barrier() blocks.
            move || {
                std::thread::sleep(Duration::from_millis(50));
                pump_switch(&sw);
                sw
            }
        });
        conn.barrier(Duration::from_secs(2)).unwrap();
        assert_eq!(conn.unacked_flow_mods(), 0);
        drop(t.join().unwrap());
    }

    #[test]
    fn batched_flow_mods_arrive_in_order() {
        let (conn, sw) = connected();
        let mods: Vec<FlowMod> = (0..5)
            .map(|i| {
                FlowMod::add(FlowMatch::in_port(PortNo(i)), 10, vec![]).with_cookie(u64::from(i))
            })
            .collect();
        conn.send_flow_mods(&mods).unwrap();
        let got = pump_switch(&sw);
        let cookies: Vec<u64> = got
            .iter()
            .filter_map(|(m, _)| match m {
                OfpMessage::FlowMod(fm) => Some(fm.cookie),
                _ => None,
            })
            .collect();
        assert_eq!(cookies, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reconnect_replays_unbarriered_flow_mods() {
        let (c_end, s_end, ctl) = faulty_pair(FaultConfig::default());
        let conn = Connection::new(Box::new(c_end));
        let sw = SwitchLink::new(Box::new(s_end));
        pump_switch(&sw);
        conn.handshake(Duration::from_secs(1)).unwrap();

        conn.add_flow(FlowMatch::in_port(PortNo(7)), 10, vec![], 0x77)
            .unwrap();
        ctl.cut(); // controller "crashes" before any barrier
        assert!(conn.barrier(Duration::from_millis(100)).is_err());
        assert_eq!(conn.state(), ConnectionState::Disconnected);
        assert_eq!(conn.unacked_flow_mods(), 1);

        // New transport: handshake reruns, the flow mod is replayed, and an
        // internal barrier retires the log without surfacing to the caller.
        let (c2, s2) = loopback();
        conn.reconnect(Box::new(c2));
        let sw2 = SwitchLink::new(Box::new(s2));
        let replayed = pump_switch(&sw2);
        conn.handshake(Duration::from_secs(1)).unwrap();
        let cookies: Vec<u64> = replayed
            .iter()
            .filter_map(|(m, _)| match m {
                OfpMessage::FlowMod(fm) => Some(fm.cookie),
                _ => None,
            })
            .collect();
        assert_eq!(cookies, vec![0x77]);
        // Internal barrier reply consumed the log and was not delivered.
        let deadline = Instant::now() + Duration::from_secs(1);
        while conn.unacked_flow_mods() > 0 && Instant::now() < deadline {
            let _ = conn.try_recv();
        }
        assert_eq!(conn.unacked_flow_mods(), 0);
        assert!(conn.try_recv().is_none());
    }

    #[test]
    fn keepalive_declares_dead_switch() {
        let (c, _s) = loopback();
        let mut conn = Connection::new(Box::new(c));
        conn.set_keepalive(Duration::from_millis(1), Duration::from_millis(20));
        // Force Ready state without a real handshake: pretend features came.
        {
            let mut io = conn.io.lock();
            io.state = ConnectionState::Ready;
            io.features = Some(SwitchFeatures {
                datapath_id: 1,
                ports: vec![],
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        let _ = conn.try_recv(); // sends the probe
        std::thread::sleep(Duration::from_millis(30));
        let _ = conn.try_recv(); // probe unanswered past the timeout
        assert_eq!(conn.state(), ConnectionState::Disconnected);
    }

    /// Regression: a caller blocked in `wait_reply` must not have its
    /// blocked time counted toward dead-peer detection. Before the fix, a
    /// switch that took longer than `keepalive_timeout` to answer (slow
    /// TCP loopback in CI) was declared dead *under* the waiting caller
    /// even though it did reply within the caller's own deadline.
    #[test]
    fn slow_reply_does_not_trip_keepalive_under_wait_reply() {
        let (c, s) = loopback();
        let mut conn = Connection::new(Box::new(c));
        let sw = SwitchLink::new(Box::new(s));
        conn.set_keepalive(Duration::from_millis(1), Duration::from_millis(20));
        pump_switch(&sw);
        conn.handshake(Duration::from_secs(1)).unwrap();

        // Let the idle interval pass so a probe is already outstanding
        // when the slow request begins — the worst case for the old code.
        std::thread::sleep(Duration::from_millis(5));
        let _ = conn.try_recv();

        // The switch answers everything — but only after 100 ms, five
        // times the keepalive timeout.
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            pump_switch(&sw);
            sw
        });
        conn.barrier(Duration::from_secs(2))
            .expect("slow barrier must complete, not die to the keepalive");
        assert_eq!(conn.state(), ConnectionState::Ready);
        let sw = t.join().unwrap();

        // With no waiter blocked, the keepalive is live again: silence
        // past interval+timeout still kills the connection.
        drop(sw);
        std::thread::sleep(Duration::from_millis(5));
        let _ = conn.try_recv(); // probe (or transport error) fires
        let deadline = Instant::now() + Duration::from_secs(1);
        while conn.state() != ConnectionState::Disconnected && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            let _ = conn.try_recv();
        }
        assert_eq!(conn.state(), ConnectionState::Disconnected);
    }

    #[test]
    fn replay_observer_sees_logged_and_retired() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Recorder {
            logged: StdMutex<Vec<(u64, u64)>>, // (seq, cookie)
            retired: StdMutex<Vec<u64>>,
        }
        impl ReplayObserver for Recorder {
            fn logged(&self, seq: u64, fm: &FlowMod) {
                self.logged.lock().unwrap().push((seq, fm.cookie));
            }
            fn retired(&self, acked_seq: u64) {
                self.retired.lock().unwrap().push(acked_seq);
            }
        }

        let (conn, sw) = connected();
        pump_switch(&sw);
        conn.handshake(Duration::from_secs(1)).unwrap();
        let rec = Arc::new(Recorder::default());
        conn.set_replay_observer(Arc::clone(&rec) as Arc<dyn ReplayObserver>);

        conn.add_flow(FlowMatch::in_port(PortNo(1)), 10, vec![], 0xa)
            .unwrap();
        conn.send_flow_mods(&[
            FlowMod::add(FlowMatch::in_port(PortNo(2)), 10, vec![]).with_cookie(0xb),
            FlowMod::add(FlowMatch::in_port(PortNo(3)), 10, vec![]).with_cookie(0xc),
        ])
        .unwrap();
        assert_eq!(
            *rec.logged.lock().unwrap(),
            vec![(1, 0xa), (2, 0xb), (3, 0xc)]
        );

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            pump_switch(&sw);
            sw
        });
        conn.barrier(Duration::from_secs(2)).unwrap();
        drop(t.join().unwrap());
        assert_eq!(*rec.retired.lock().unwrap(), vec![3]);
        assert_eq!(conn.unacked_flow_mods(), 0);
    }

    #[test]
    fn echo_replies_pair_with_user_requests() {
        let (conn, sw) = connected();
        pump_switch(&sw);
        conn.handshake(Duration::from_secs(1)).unwrap();
        let xid = conn
            .send(&OfpMessage::EchoRequest(vec![0xaa, 0xbb]))
            .unwrap();
        pump_switch(&sw);
        let reply = conn.wait_reply(xid, Duration::from_secs(1)).unwrap();
        assert_eq!(reply, OfpMessage::EchoReply(vec![0xaa, 0xbb]));
    }
}
