//! Byte-stream transports for the control channel.
//!
//! The control plane no longer exchanges pre-decoded frames: a
//! [`Transport`] moves *bytes*, with all the inconveniences of a real
//! socket — partial reads, partial writes, and disconnection discovered
//! only on the next I/O call. Frame boundaries are recovered above this
//! layer by [`crate::framer::Framer`].
//!
//! Three implementations cover the reproduction's needs:
//!
//! * [`loopback`] — an in-process pipe pair, the production default for a
//!   controller and switch sharing a host;
//! * [`faulty_pair`] — a loopback wrapped with deterministic fault
//!   injection (forced short reads/writes, mid-frame cuts, byte
//!   corruption) for the disconnect/replay tests;
//! * [`ScriptedTransport`] — replays a canned byte stream and captures
//!   writes, for byte-identical controller-agnosticism tests.

use crate::{OfError, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A bidirectional byte stream with socket-like semantics.
///
/// * `send` may accept fewer bytes than offered (partial write) and
///   returns how many it took;
/// * `recv` returns `Ok(0)` when no bytes are available right now
///   (would-block), a positive count otherwise;
/// * both return [`OfError::Disconnected`] once the peer is gone and —
///   for `recv` — all delivered bytes have been drained.
pub trait Transport: Send {
    /// Attempts to write `buf`; returns the number of bytes accepted.
    fn send(&self, buf: &[u8]) -> Result<usize>;

    /// Attempts to read into `buf`; `Ok(0)` means try again later.
    fn recv(&self, buf: &mut [u8]) -> Result<usize>;

    /// Bytes delivered by the peer but not yet read. Used by the switch
    /// side to answer "is the control channel idle?"; transports that
    /// cannot know report 0.
    fn pending_bytes(&self) -> usize {
        0
    }
}

/// A shared transport handle is itself a transport — lets a test keep a
/// [`ScriptedTransport`] (or fault control) reference after boxing the
/// other clone into a connection.
impl<T: Transport + ?Sized + Sync> Transport for std::sync::Arc<T> {
    fn send(&self, buf: &[u8]) -> Result<usize> {
        (**self).send(buf)
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        (**self).recv(buf)
    }

    fn pending_bytes(&self) -> usize {
        (**self).pending_bytes()
    }
}

/// One direction of an in-process byte pipe.
struct Pipe {
    buf: parking_lot::Mutex<VecDeque<u8>>,
    closed: AtomicBool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            buf: parking_lot::Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
        })
    }

    fn write(&self, data: &[u8]) -> Result<usize> {
        if self.closed.load(Ordering::Acquire) {
            return Err(OfError::Disconnected);
        }
        self.buf.lock().extend(data);
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8]) -> Result<usize> {
        let mut buf = self.buf.lock();
        if buf.is_empty() {
            return if self.closed.load(Ordering::Acquire) {
                Err(OfError::Disconnected)
            } else {
                Ok(0)
            };
        }
        let n = out.len().min(buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = buf.pop_front().expect("length checked");
        }
        Ok(n)
    }

    fn len(&self) -> usize {
        self.buf.lock().len()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// One end of a [`loopback`] pair.
pub struct LoopbackEnd {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
}

/// Creates a connected in-process transport pair.
///
/// Writes are always accepted in full (the pipe is unbounded), so a
/// message `send` on one end is atomically visible to the other — the
/// property the switch's control-idle accounting relies on. Dropping
/// either end closes both directions: the peer's next `send` fails
/// immediately and its `recv` fails once the pipe is drained.
pub fn loopback() -> (LoopbackEnd, LoopbackEnd) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    (
        LoopbackEnd {
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
        },
        LoopbackEnd {
            tx: b_to_a,
            rx: a_to_b,
        },
    )
}

impl Transport for LoopbackEnd {
    fn send(&self, buf: &[u8]) -> Result<usize> {
        self.tx.write(buf)
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        self.rx.read(buf)
    }

    fn pending_bytes(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for LoopbackEnd {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

/// Deterministic fault plan for a [`faulty_pair`].
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Maximum bytes moved per `send`/`recv` call — forces the framer to
    /// cope with short reads and the connection with short writes.
    pub chunk: Option<usize>,
    /// Cut the link (both directions) after this many bytes have been
    /// written across it in total — typically mid-frame.
    pub fail_after_bytes: Option<u64>,
    /// Flip the lowest bit of the byte at this absolute write offset,
    /// simulating corruption the framer must reject.
    pub corrupt_at: Option<u64>,
}

struct FaultState {
    cfg: FaultConfig,
    written: AtomicU64,
    cut: AtomicBool,
}

/// Runtime control over a [`faulty_pair`]'s shared fault state.
#[derive(Clone)]
pub struct FaultControl {
    state: Arc<FaultState>,
}

impl FaultControl {
    /// Severs the link now; all subsequent I/O on either end fails
    /// (reads drain already-delivered bytes first).
    pub fn cut(&self) {
        self.state.cut.store(true, Ordering::Release);
    }

    /// Whether the link has been cut (by plan or by [`FaultControl::cut`]).
    pub fn is_cut(&self) -> bool {
        self.state.cut.load(Ordering::Acquire)
    }

    /// Total bytes written across the link so far.
    pub fn bytes_written(&self) -> u64 {
        self.state.written.load(Ordering::Acquire)
    }
}

/// One end of a [`faulty_pair`].
pub struct FaultEnd {
    inner: LoopbackEnd,
    state: Arc<FaultState>,
}

/// A loopback pair with shared, deterministic fault injection.
pub fn faulty_pair(cfg: FaultConfig) -> (FaultEnd, FaultEnd, FaultControl) {
    let (a, b) = loopback();
    let state = Arc::new(FaultState {
        cfg,
        written: AtomicU64::new(0),
        cut: AtomicBool::new(false),
    });
    (
        FaultEnd {
            inner: a,
            state: Arc::clone(&state),
        },
        FaultEnd {
            inner: b,
            state: Arc::clone(&state),
        },
        FaultControl { state },
    )
}

impl Transport for FaultEnd {
    fn send(&self, buf: &[u8]) -> Result<usize> {
        if self.state.cut.load(Ordering::Acquire) {
            return Err(OfError::Disconnected);
        }
        let mut allowed = buf.len();
        if let Some(chunk) = self.state.cfg.chunk {
            allowed = allowed.min(chunk.max(1));
        }
        let already = self.state.written.load(Ordering::Acquire);
        if let Some(cap) = self.state.cfg.fail_after_bytes {
            let remaining = cap.saturating_sub(already);
            if remaining == 0 {
                self.state.cut.store(true, Ordering::Release);
                return Err(OfError::Disconnected);
            }
            allowed = allowed.min(remaining as usize);
        }
        let mut chunk = buf[..allowed].to_vec();
        if let Some(at) = self.state.cfg.corrupt_at {
            if at >= already && at < already + allowed as u64 {
                chunk[(at - already) as usize] ^= 0x01;
            }
        }
        let n = self.inner.send(&chunk)?;
        self.state.written.fetch_add(n as u64, Ordering::AcqRel);
        Ok(n)
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        let limit = self
            .state
            .cfg
            .chunk
            .map_or(buf.len(), |c| buf.len().min(c.max(1)));
        match self.inner.recv(&mut buf[..limit]) {
            Ok(0) if self.state.cut.load(Ordering::Acquire) => Err(OfError::Disconnected),
            other => other,
        }
    }

    fn pending_bytes(&self) -> usize {
        self.inner.pending_bytes()
    }
}

/// Serves a canned byte stream as reads and captures every write —
/// the harness for proving two different controller apps consume a
/// byte-identical switch stream through the same connection API.
pub struct ScriptedTransport {
    script: parking_lot::Mutex<VecDeque<u8>>,
    written: parking_lot::Mutex<Vec<u8>>,
    chunk: Option<usize>,
}

impl ScriptedTransport {
    /// A transport whose reads will yield exactly `script`, then
    /// would-block forever.
    pub fn new(script: Vec<u8>) -> ScriptedTransport {
        ScriptedTransport {
            script: parking_lot::Mutex::new(script.into()),
            written: parking_lot::Mutex::new(Vec::new()),
            chunk: None,
        }
    }

    /// Limits each read to at most `chunk` bytes, exercising reassembly.
    pub fn with_chunk(mut self, chunk: usize) -> ScriptedTransport {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Everything the connection under test wrote, in order.
    pub fn written(&self) -> Vec<u8> {
        self.written.lock().clone()
    }

    /// Bytes of the script not yet consumed by reads.
    pub fn unread(&self) -> usize {
        self.script.lock().len()
    }
}

impl Transport for ScriptedTransport {
    fn send(&self, buf: &[u8]) -> Result<usize> {
        self.written.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        let mut script = self.script.lock();
        let limit = self.chunk.map_or(buf.len(), |c| buf.len().min(c));
        let n = limit.min(script.len());
        for slot in buf.iter_mut().take(n) {
            *slot = script.pop_front().expect("length checked");
        }
        Ok(n)
    }

    fn pending_bytes(&self) -> usize {
        self.script.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_bytes_both_ways() {
        let (a, b) = loopback();
        assert_eq!(a.send(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.send(b"yo").unwrap(), 2);
        assert_eq!(a.recv(&mut buf).unwrap(), 2);
        assert_eq!(a.recv(&mut buf).unwrap(), 0); // would-block, not error
    }

    #[test]
    fn loopback_drop_disconnects_after_drain() {
        let (a, b) = loopback();
        a.send(b"bye").unwrap();
        drop(a);
        assert!(matches!(b.send(b"x"), Err(OfError::Disconnected)));
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 3); // delivered bytes drain first
        assert!(matches!(b.recv(&mut buf), Err(OfError::Disconnected)));
    }

    #[test]
    fn faulty_chunking_forces_partial_io() {
        let (a, b, _ctl) = faulty_pair(FaultConfig {
            chunk: Some(3),
            ..FaultConfig::default()
        });
        assert_eq!(a.send(b"0123456789").unwrap(), 3); // short write
        a.send(b"3456789").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf).unwrap(), 3); // short read
    }

    #[test]
    fn faulty_cut_mid_stream() {
        let (a, b, ctl) = faulty_pair(FaultConfig {
            fail_after_bytes: Some(4),
            ..FaultConfig::default()
        });
        assert_eq!(a.send(b"0123456789").unwrap(), 4);
        assert!(matches!(a.send(b"456789"), Err(OfError::Disconnected)));
        assert!(ctl.is_cut());
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf).unwrap(), 4);
        assert!(matches!(b.recv(&mut buf), Err(OfError::Disconnected)));
    }

    #[test]
    fn faulty_corruption_flips_one_bit() {
        let (a, b, _ctl) = faulty_pair(FaultConfig {
            corrupt_at: Some(2),
            ..FaultConfig::default()
        });
        a.send(&[0x10, 0x11, 0x12, 0x13]).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(b.recv(&mut buf).unwrap(), 4);
        assert_eq!(buf, [0x10, 0x11, 0x13, 0x13]);
    }

    #[test]
    fn scripted_serves_and_captures() {
        let t = ScriptedTransport::new(vec![1, 2, 3, 4, 5]).with_chunk(2);
        let mut buf = [0u8; 8];
        assert_eq!(t.recv(&mut buf).unwrap(), 2);
        assert_eq!(t.recv(&mut buf).unwrap(), 2);
        assert_eq!(t.recv(&mut buf).unwrap(), 1);
        assert_eq!(t.recv(&mut buf).unwrap(), 0);
        t.send(b"out").unwrap();
        assert_eq!(t.written(), b"out");
    }
}
