//! Cuts an OpenFlow byte stream into complete frames.
//!
//! A [`Framer`] accumulates whatever byte fragments the [`crate::transport`]
//! delivers and yields one complete OF 1.0 message at a time, using only the
//! 8-byte common header's `length` field — exactly how a real switch frames
//! its TCP control connection. Bad version bytes and absurd lengths poison
//! the framer: once the stream position is untrustworthy there is no way to
//! resynchronise, so every subsequent poll fails until [`Framer::reset`].

use crate::wire::OfpHeader;
use crate::{OfError, Result};

/// Default maximum accepted frame length — the OF 1.0 header's `length`
/// field is 16 bits, so this admits every encodable frame.
pub const DEFAULT_MAX_FRAME: usize = 65_535;

/// Incremental frame reassembler for the OF 1.0 byte stream.
pub struct Framer {
    buf: Vec<u8>,
    max_frame: usize,
    poisoned: Option<OfError>,
}

impl Default for Framer {
    fn default() -> Framer {
        Framer::new()
    }
}

impl Framer {
    /// A framer accepting frames up to [`DEFAULT_MAX_FRAME`] bytes.
    pub fn new() -> Framer {
        Framer::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// A framer with a custom frame-size ceiling.
    pub fn with_max_frame(max_frame: usize) -> Framer {
        Framer {
            buf: Vec::new(),
            max_frame: max_frame.max(OfpHeader::SIZE),
            poisoned: None,
        }
    }

    /// Appends newly received bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Yields the next complete frame (header included), `Ok(None)` if more
    /// bytes are needed, or the poisoning error if the stream desynced.
    pub fn poll_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < OfpHeader::SIZE {
            return Ok(None);
        }
        let header = OfpHeader::parse(&self.buf).expect("buffer holds a full header");
        if let Err(e) = header.validate(self.max_frame) {
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        let total = header.length();
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let frame = std::mem::replace(&mut self.buf, rest);
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a framing error has poisoned the stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Discards all state — used when a connection re-handshakes over a
    /// fresh transport.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.poisoned = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;
    use crate::messages::OfpMessage;

    #[test]
    fn yields_frames_across_arbitrary_splits() {
        let mut stream = Vec::new();
        stream.extend(encode(&OfpMessage::Hello, 1));
        stream.extend(encode(&OfpMessage::EchoRequest(vec![7; 13]), 2));
        stream.extend(encode(&OfpMessage::BarrierRequest, 3));

        // Feed one byte at a time — the worst case a transport can do.
        let mut framer = Framer::new();
        let mut frames = Vec::new();
        for b in &stream {
            framer.push(&[*b]);
            while let Some(f) = framer.poll_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], encode(&OfpMessage::Hello, 1));
        assert_eq!(frames[2], encode(&OfpMessage::BarrierRequest, 3));
        assert_eq!(framer.buffered(), 0);
    }

    #[test]
    fn rejects_bad_version_and_poisons() {
        let mut framer = Framer::new();
        framer.push(&[0x04, 0, 0, 8, 0, 0, 0, 0]);
        assert_eq!(framer.poll_frame().unwrap_err(), OfError::BadVersion(0x04));
        // Poisoned: even valid bytes are refused now.
        framer.push(&encode(&OfpMessage::Hello, 1));
        assert!(framer.poll_frame().is_err());
        framer.reset();
        framer.push(&encode(&OfpMessage::Hello, 1));
        assert!(framer.poll_frame().unwrap().is_some());
    }

    #[test]
    fn rejects_oversized_and_undersized_lengths() {
        let mut framer = Framer::with_max_frame(16);
        framer.push(&[0x01, 0, 0xff, 0xff, 0, 0, 0, 0]);
        assert_eq!(
            framer.poll_frame().unwrap_err(),
            OfError::Oversized {
                len: 0xffff,
                max: 16
            }
        );

        let mut framer = Framer::new();
        // length=4 < header size: the stream cannot be advanced safely.
        framer.push(&[0x01, 0, 0, 4, 0, 0, 0, 0]);
        assert_eq!(framer.poll_frame().unwrap_err(), OfError::BadLength);
        assert!(framer.is_poisoned());
    }

    #[test]
    fn partial_frame_is_not_yielded() {
        let bytes = encode(&OfpMessage::EchoRequest(vec![1, 2, 3, 4]), 9);
        let mut framer = Framer::new();
        framer.push(&bytes[..bytes.len() - 1]);
        assert!(framer.poll_frame().unwrap().is_none());
        framer.push(&bytes[bytes.len() - 1..]);
        assert_eq!(framer.poll_frame().unwrap().unwrap(), bytes);
    }
}
