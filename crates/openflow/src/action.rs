//! OpenFlow 1.0 actions.

use crate::types::PortNo;
use packet_wire::MacAddr;
use std::net::Ipv4Addr;

/// An OpenFlow 1.0 action. An empty action list means "drop".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port (physical or reserved like FLOOD/CONTROLLER).
    Output(PortNo),
    /// Set the 802.1Q VLAN ID (adds a tag if absent).
    SetVlanId(u16),
    /// Strip the 802.1Q tag.
    StripVlan,
    /// Rewrite the Ethernet source address.
    SetEthSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetEthDst(MacAddr),
    /// Rewrite the IPv4 source address.
    SetIpv4Src(Ipv4Addr),
    /// Rewrite the IPv4 destination address.
    SetIpv4Dst(Ipv4Addr),
    /// Rewrite the IPv4 TOS byte.
    SetIpTos(u8),
    /// Rewrite the TCP/UDP source port.
    SetL4Src(u16),
    /// Rewrite the TCP/UDP destination port.
    SetL4Dst(u16),
}

impl Action {
    /// If this is a plain output to a physical port, returns it.
    pub fn output_port(&self) -> Option<PortNo> {
        match self {
            Action::Output(p) if p.is_physical() => Some(*p),
            _ => None,
        }
    }

    /// True for any `Output` action (physical or reserved).
    pub fn is_output(&self) -> bool {
        matches!(self, Action::Output(_))
    }
}

/// Helpers over whole action lists.
pub trait ActionListExt {
    /// `Some(port)` iff the list is exactly `[Output(port)]` with `port`
    /// physical — the action shape of a p-2-p steering rule.
    fn single_physical_output(&self) -> Option<PortNo>;
    /// Every physical port the list outputs to, in order.
    fn output_ports(&self) -> Vec<PortNo>;
}

impl ActionListExt for [Action] {
    fn single_physical_output(&self) -> Option<PortNo> {
        match self {
            [only] => only.output_port(),
            _ => None,
        }
    }

    fn output_ports(&self) -> Vec<PortNo> {
        self.iter().filter_map(|a| a.output_port()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_output_detection() {
        assert_eq!(
            [Action::Output(PortNo(4))].single_physical_output(),
            Some(PortNo(4))
        );
        assert_eq!(
            [Action::Output(PortNo::FLOOD)].single_physical_output(),
            None
        );
        assert_eq!(
            [Action::SetIpTos(1), Action::Output(PortNo(4))].single_physical_output(),
            None
        );
        let empty: [Action; 0] = [];
        assert_eq!(empty.single_physical_output(), None);
    }

    #[test]
    fn output_ports_skips_reserved() {
        let list = [
            Action::Output(PortNo(1)),
            Action::Output(PortNo::CONTROLLER),
            Action::Output(PortNo(2)),
        ];
        assert_eq!(list.output_ports(), vec![PortNo(1), PortNo(2)]);
    }
}
