//! The OpenFlow 1.0 12-tuple match with per-field wildcards.

use crate::types::PortNo;
use packet_wire::{FlowKey, MacAddr};
use std::net::Ipv4Addr;

/// An OpenFlow 1.0 match. `None` means "wildcarded".
///
/// IPv4 addresses carry a CIDR prefix length (0–32); `Some((addr, 0))` is
/// canonicalised to a full wildcard on construction, mirroring the OF 1.0
/// wildcard bitfield semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowMatch {
    pub in_port: Option<PortNo>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub vlan_id: Option<u16>,
    pub eth_type: Option<u16>,
    pub ip_tos: Option<u8>,
    pub ip_proto: Option<u8>,
    pub ipv4_src: Option<(Ipv4Addr, u8)>,
    pub ipv4_dst: Option<(Ipv4Addr, u8)>,
    pub l4_src: Option<u16>,
    pub l4_dst: Option<u16>,
}

fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        u32::MAX
    } else {
        u32::MAX << (32 - len)
    }
}

fn prefix_match(rule: Option<(Ipv4Addr, u8)>, addr: Ipv4Addr) -> bool {
    match rule {
        None => true,
        Some((net, len)) => {
            let m = prefix_mask(len);
            u32::from(net) & m == u32::from(addr) & m
        }
    }
}

impl FlowMatch {
    /// The fully-wildcarded match (matches every packet on every port).
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// A match on ingress port only — the shape the p-2-p detector hunts for.
    pub fn in_port(port: PortNo) -> FlowMatch {
        FlowMatch {
            in_port: Some(port),
            ..FlowMatch::default()
        }
    }

    /// A match on an exact L2 source/destination pair — the shape a
    /// learning switch installs.
    pub fn eth_pair(src: MacAddr, dst: MacAddr) -> FlowMatch {
        FlowMatch {
            eth_src: Some(src),
            eth_dst: Some(dst),
            ..FlowMatch::default()
        }
    }

    /// Canonicalises zero-length prefixes to full wildcards.
    pub fn canonicalise(mut self) -> FlowMatch {
        if matches!(self.ipv4_src, Some((_, 0))) {
            self.ipv4_src = None;
        }
        if matches!(self.ipv4_dst, Some((_, 0))) {
            self.ipv4_dst = None;
        }
        // Mask host bits so equal-meaning matches compare equal.
        if let Some((a, l)) = self.ipv4_src {
            self.ipv4_src = Some((Ipv4Addr::from(u32::from(a) & prefix_mask(l)), l));
        }
        if let Some((a, l)) = self.ipv4_dst {
            self.ipv4_dst = Some((Ipv4Addr::from(u32::from(a) & prefix_mask(l)), l));
        }
        self
    }

    /// Does this match cover a packet with `key` arriving on `port`?
    pub fn matches(&self, port: PortNo, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if p != port {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if m != key.eth_src {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != key.eth_dst {
                return false;
            }
        }
        if let Some(v) = self.vlan_id {
            if v != key.vlan_id {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if t != key.eth_type {
                return false;
            }
        }
        if let Some(t) = self.ip_tos {
            if t != key.ip_tos {
                return false;
            }
        }
        if let Some(p) = self.ip_proto {
            if p != key.ip_proto {
                return false;
            }
        }
        if !prefix_match(self.ipv4_src, key.ipv4_src) {
            return false;
        }
        if !prefix_match(self.ipv4_dst, key.ipv4_dst) {
            return false;
        }
        if let Some(p) = self.l4_src {
            if p != key.l4_src {
                return false;
            }
        }
        if let Some(p) = self.l4_dst {
            if p != key.l4_dst {
                return false;
            }
        }
        true
    }

    /// True when every field is wildcarded.
    pub fn is_any(&self) -> bool {
        *self == FlowMatch::default()
    }

    /// If the match constrains *only* the ingress port, returns it.
    /// This is the exact condition the p-2-p link detector requires.
    pub fn only_in_port(&self) -> Option<PortNo> {
        let p = self.in_port?;
        let rest_wild = FlowMatch {
            in_port: None,
            ..*self
        }
        .is_any();
        rest_wild.then_some(p)
    }

    /// Does this match reference the given ingress port at all?
    /// (Either constrained to it, or wildcarded and thus covering it.)
    pub fn covers_in_port(&self, port: PortNo) -> bool {
        self.in_port.map(|p| p == port).unwrap_or(true)
    }

    /// The wildcard *mask* of this match — which fields are set and the
    /// prefix lengths. Two matches with the same mask live in the same
    /// classifier subtable.
    pub fn mask(&self) -> MatchMask {
        MatchMask {
            in_port: self.in_port.is_some(),
            eth_src: self.eth_src.is_some(),
            eth_dst: self.eth_dst.is_some(),
            vlan_id: self.vlan_id.is_some(),
            eth_type: self.eth_type.is_some(),
            ip_tos: self.ip_tos.is_some(),
            ip_proto: self.ip_proto.is_some(),
            ipv4_src_len: self.ipv4_src.map(|(_, l)| l).unwrap_or(0),
            ipv4_dst_len: self.ipv4_dst.map(|(_, l)| l).unwrap_or(0),
            l4_src: self.l4_src.is_some(),
            l4_dst: self.l4_dst.is_some(),
        }
    }

    /// Projects a concrete packet `(port, key)` onto this mask, producing
    /// the tuple used as a hash key inside a classifier subtable.
    pub fn project(mask: &MatchMask, port: PortNo, key: &FlowKey) -> ProjectedKey {
        ProjectedKey {
            in_port: mask.in_port.then_some(port),
            eth_src: mask.eth_src.then_some(key.eth_src),
            eth_dst: mask.eth_dst.then_some(key.eth_dst),
            vlan_id: mask.vlan_id.then_some(key.vlan_id),
            eth_type: mask.eth_type.then_some(key.eth_type),
            ip_tos: mask.ip_tos.then_some(key.ip_tos),
            ip_proto: mask.ip_proto.then_some(key.ip_proto),
            ipv4_src: u32::from(key.ipv4_src) & prefix_mask(mask.ipv4_src_len),
            ipv4_dst: u32::from(key.ipv4_dst) & prefix_mask(mask.ipv4_dst_len),
            l4_src: mask.l4_src.then_some(key.l4_src),
            l4_dst: mask.l4_dst.then_some(key.l4_dst),
        }
    }

    /// Projects this rule's own values onto its mask — the subtable hash key
    /// under which the rule is stored.
    pub fn own_projection(&self) -> ProjectedKey {
        let mask = self.mask();
        ProjectedKey {
            in_port: self.in_port,
            eth_src: self.eth_src,
            eth_dst: self.eth_dst,
            vlan_id: self.vlan_id,
            eth_type: self.eth_type,
            ip_tos: self.ip_tos,
            ip_proto: self.ip_proto,
            ipv4_src: self
                .ipv4_src
                .map(|(a, l)| u32::from(a) & prefix_mask(l))
                .unwrap_or(0),
            ipv4_dst: self
                .ipv4_dst
                .map(|(a, l)| u32::from(a) & prefix_mask(l))
                .unwrap_or(0),
            l4_src: self.l4_src,
            l4_dst: self.l4_dst,
        }
        .normalise(&mask)
    }
}

/// Which fields a match constrains (prefix lengths for IPv4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MatchMask {
    pub in_port: bool,
    pub eth_src: bool,
    pub eth_dst: bool,
    pub vlan_id: bool,
    pub eth_type: bool,
    pub ip_tos: bool,
    pub ip_proto: bool,
    pub ipv4_src_len: u8,
    pub ipv4_dst_len: u8,
    pub l4_src: bool,
    pub l4_dst: bool,
}

impl MatchMask {
    /// The all-wildcard mask: constrains nothing, covers every packet.
    pub fn empty() -> MatchMask {
        MatchMask::default()
    }

    /// True when no field is constrained.
    pub fn is_empty(&self) -> bool {
        *self == MatchMask::default()
    }

    /// Folds `other` into this mask: the result constrains every field
    /// either mask constrains (field-wise OR, prefix lengths take the
    /// longer). This is how staged unwildcarding accumulates the minimal
    /// megaflow mask: fold the mask of every subtable the classifier
    /// consulted, and any packet agreeing on the folded fields walks the
    /// identical subtables to the identical outcome.
    pub fn fold(&mut self, other: &MatchMask) {
        self.in_port |= other.in_port;
        self.eth_src |= other.eth_src;
        self.eth_dst |= other.eth_dst;
        self.vlan_id |= other.vlan_id;
        self.eth_type |= other.eth_type;
        self.ip_tos |= other.ip_tos;
        self.ip_proto |= other.ip_proto;
        self.ipv4_src_len = self.ipv4_src_len.max(other.ipv4_src_len);
        self.ipv4_dst_len = self.ipv4_dst_len.max(other.ipv4_dst_len);
        self.l4_src |= other.l4_src;
        self.l4_dst |= other.l4_dst;
    }

    /// The fold of two masks, by value.
    pub fn union(mut self, other: &MatchMask) -> MatchMask {
        self.fold(other);
        self
    }

    /// Does `sub`'s constraint set include this mask's? (Every field this
    /// mask pins, `sub` pins at least as tightly.) A megaflow installed
    /// under `sub` therefore distinguishes at least everything this mask
    /// distinguishes.
    pub fn covered_by(&self, sub: &MatchMask) -> bool {
        (!self.in_port || sub.in_port)
            && (!self.eth_src || sub.eth_src)
            && (!self.eth_dst || sub.eth_dst)
            && (!self.vlan_id || sub.vlan_id)
            && (!self.eth_type || sub.eth_type)
            && (!self.ip_tos || sub.ip_tos)
            && (!self.ip_proto || sub.ip_proto)
            && self.ipv4_src_len <= sub.ipv4_src_len
            && self.ipv4_dst_len <= sub.ipv4_dst_len
            && (!self.l4_src || sub.l4_src)
            && (!self.l4_dst || sub.l4_dst)
    }
}

/// A packet (or rule) projected onto a [`MatchMask`]; hashable subtable key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProjectedKey {
    pub in_port: Option<PortNo>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub vlan_id: Option<u16>,
    pub eth_type: Option<u16>,
    pub ip_tos: Option<u8>,
    pub ip_proto: Option<u8>,
    pub ipv4_src: u32,
    pub ipv4_dst: u32,
    pub l4_src: Option<u16>,
    pub l4_dst: Option<u16>,
}

impl ProjectedKey {
    fn normalise(mut self, mask: &MatchMask) -> ProjectedKey {
        if !mask.in_port {
            self.in_port = None;
        }
        if !mask.l4_src {
            self.l4_src = None;
        }
        if !mask.l4_dst {
            self.l4_dst = None;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet_wire::PacketBuilder;

    fn key() -> FlowKey {
        FlowKey::extract(
            &PacketBuilder::udp_probe(64)
                .eth(MacAddr::local(1), MacAddr::local(2))
                .ip(Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(10, 9, 9, 9))
                .ports(100, 200)
                .build(),
        )
    }

    #[test]
    fn any_matches_everything() {
        assert!(FlowMatch::any().matches(PortNo(1), &key()));
        assert!(FlowMatch::any().matches(PortNo(9), &FlowKey::default()));
    }

    #[test]
    fn in_port_only() {
        let m = FlowMatch::in_port(PortNo(3));
        assert!(m.matches(PortNo(3), &key()));
        assert!(!m.matches(PortNo(4), &key()));
        assert_eq!(m.only_in_port(), Some(PortNo(3)));
        assert_eq!(FlowMatch::any().only_in_port(), None);

        let mut narrowed = m;
        narrowed.l4_dst = Some(200);
        assert_eq!(narrowed.only_in_port(), None);
    }

    #[test]
    fn cidr_prefixes() {
        let mut m = FlowMatch::any();
        m.ipv4_src = Some((Ipv4Addr::new(10, 1, 0, 0), 16));
        assert!(m.matches(PortNo(1), &key()));
        m.ipv4_src = Some((Ipv4Addr::new(10, 2, 0, 0), 16));
        assert!(!m.matches(PortNo(1), &key()));
        m.ipv4_src = Some((Ipv4Addr::new(0, 0, 0, 0), 0));
        assert!(m.canonicalise().matches(PortNo(1), &key()));
    }

    #[test]
    fn canonicalise_masks_host_bits() {
        let mut a = FlowMatch::any();
        a.ipv4_dst = Some((Ipv4Addr::new(10, 9, 9, 9), 16));
        let mut b = FlowMatch::any();
        b.ipv4_dst = Some((Ipv4Addr::new(10, 9, 0, 0), 16));
        assert_eq!(a.canonicalise(), b.canonicalise());
    }

    #[test]
    fn l4_and_l2_fields() {
        let mut m = FlowMatch::any();
        m.eth_dst = Some(MacAddr::local(2));
        m.l4_dst = Some(200);
        assert!(m.matches(PortNo(1), &key()));
        m.l4_dst = Some(201);
        assert!(!m.matches(PortNo(1), &key()));
    }

    #[test]
    fn covers_in_port_includes_wildcard() {
        assert!(FlowMatch::any().covers_in_port(PortNo(5)));
        assert!(FlowMatch::in_port(PortNo(5)).covers_in_port(PortNo(5)));
        assert!(!FlowMatch::in_port(PortNo(6)).covers_in_port(PortNo(5)));
    }

    #[test]
    fn mask_fold_is_fieldwise_or_with_max_prefix() {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.ipv4_dst = Some((Ipv4Addr::new(10, 0, 0, 0), 8));
        let mut n = FlowMatch::any();
        n.l4_dst = Some(80);
        n.ipv4_dst = Some((Ipv4Addr::new(10, 9, 0, 0), 16));

        let mut folded = m.mask();
        folded.fold(&n.mask());
        assert!(folded.in_port && folded.l4_dst);
        assert_eq!(folded.ipv4_dst_len, 16);
        assert!(m.mask().covered_by(&folded));
        assert!(n.mask().covered_by(&folded));
        assert!(!folded.covered_by(&m.mask()));
        assert_eq!(folded, m.mask().union(&n.mask()));
    }

    #[test]
    fn empty_mask_is_identity_for_fold() {
        let mut m = FlowMatch::in_port(PortNo(3));
        m.eth_type = Some(0x0800);
        m.l4_src = Some(9);
        let mask = m.mask();
        assert_eq!(mask.union(&MatchMask::empty()), mask);
        assert_eq!(MatchMask::empty().union(&mask), mask);
        assert!(MatchMask::empty().is_empty());
        assert!(!mask.is_empty());
        assert!(MatchMask::empty().covered_by(&mask));
    }

    #[test]
    fn projection_under_folded_mask_distinguishes_matching() {
        // The staged-unwildcarding soundness core: if two packets project
        // identically under a folded mask, they match the same rules whose
        // masks the fold covers.
        let mut rule = FlowMatch::any();
        rule.l4_dst = Some(200);
        let rule = rule.canonicalise();
        let folded = rule.mask().union(&FlowMatch::in_port(PortNo(1)).mask());
        let k1 = key();
        let mut k2 = key();
        k2.l4_src = 999; // differs only in a field the fold wildcards
        assert_eq!(
            FlowMatch::project(&folded, PortNo(1), &k1),
            FlowMatch::project(&folded, PortNo(1), &k2)
        );
        assert_eq!(rule.matches(PortNo(1), &k1), rule.matches(PortNo(1), &k2));
    }

    #[test]
    fn projection_agrees_with_matching() {
        // If a packet matches a rule, its projection under the rule's mask
        // must equal the rule's own projection — the classifier invariant.
        let mut rule = FlowMatch::in_port(PortNo(1));
        rule.ipv4_dst = Some((Ipv4Addr::new(10, 9, 0, 0), 16));
        rule.l4_dst = Some(200);
        let rule = rule.canonicalise();
        let k = key();
        assert!(rule.matches(PortNo(1), &k));
        let mask = rule.mask();
        assert_eq!(
            FlowMatch::project(&mask, PortNo(1), &k),
            rule.own_projection()
        );
        // And a non-matching packet projects to a different key.
        let mut other = k;
        other.l4_dst = 999;
        assert_ne!(
            FlowMatch::project(&mask, PortNo(1), &other),
            rule.own_projection()
        );
    }
}
