//! Active/standby controller failover.
//!
//! Two controllers share a **role protocol** over any [`Transport`]: the
//! active controller streams replication records — every flow mod it
//! appends to a connection's barrier-fenced replay log, every barrier
//! retirement, a per-switch announcement, and periodic heartbeats — to
//! the standby. The standby mirrors the un-barriered tail of every
//! switch's replay log; when the peer stream dies (hang-up or heartbeat
//! silence) it dials the switches itself and **replays the mirror
//! idempotently**: OpenFlow 1.0 `Add` replaces, so re-installing a rule
//! the switch already committed changes nothing and emits no
//! `FlowRemoved` — exactly-once semantics without two-phase commit.
//!
//! The wire format is deliberately tiny — one record per event:
//!
//! ```text
//! kind:u8  dpid:u64be  seq:u64be  len:u32be  body[len]
//!   0 = Heartbeat   (dpid = seq = len = 0)
//!   1 = SwitchUp    (a switch reached Ready under the active)
//!   2 = Logged      (body = the OF 1.0 encoded FlowMod frame)
//!   3 = Retired     (seq = highest replay seq a barrier acknowledged)
//! ```
//!
//! Replication is fire-and-forget from the active's perspective: a dead
//! standby must never stall the fabric, so write errors are swallowed
//! and the standby resynchronises naturally — any mod it missed was
//! either barriered (on the switch; nothing to replay) or will fail on
//! the active too (and the operator restarts the pair).

use crate::codec::{decode, encode};
use crate::connection::{Connection, ReplayObserver};
use crate::messages::{FlowMod, OfpMessage};
use crate::transport::Transport;
use crate::{OfError, Result};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REC_HEARTBEAT: u8 = 0;
const REC_SWITCH_UP: u8 = 1;
const REC_LOGGED: u8 = 2;
const REC_RETIRED: u8 = 3;
const REC_HDR: usize = 1 + 8 + 8 + 4;

fn record(kind: u8, dpid: u64, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HDR + body.len());
    out.push(kind);
    out.extend_from_slice(&dpid.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

struct PeerIo {
    transport: Box<dyn Transport>,
    /// Bytes accepted but not yet taken by the transport.
    wbuf: Vec<u8>,
    last_beat: Instant,
}

impl PeerIo {
    /// Best-effort write: buffers, pushes what the transport takes, and
    /// swallows errors — a dead standby must not stall the active.
    fn write(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
        while !self.wbuf.is_empty() {
            match self.transport.send(&self.wbuf) {
                Ok(0) => break, // saturated; retry on the next write
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(_) => {
                    self.wbuf.clear();
                    break;
                }
            }
        }
    }
}

/// The active controller's half of the role protocol: replicates replay
/// activity to the standby. Cloneable-by-`Arc` sinks attach to each
/// switch connection via [`Connection::set_replay_observer`].
pub struct ActivePeer {
    io: Arc<Mutex<PeerIo>>,
    beat_interval: Duration,
}

impl ActivePeer {
    /// Wraps the transport to the standby. Heartbeats default to every
    /// 10 ms; [`ActivePeer::set_heartbeat_interval`] overrides.
    pub fn new(transport: Box<dyn Transport>) -> ActivePeer {
        ActivePeer {
            io: Arc::new(Mutex::new(PeerIo {
                transport,
                wbuf: Vec::new(),
                last_beat: Instant::now(),
            })),
            beat_interval: Duration::from_millis(10),
        }
    }

    /// Overrides the heartbeat cadence.
    pub fn set_heartbeat_interval(&mut self, interval: Duration) {
        self.beat_interval = interval;
    }

    /// Announces that the switch `dpid` is live under this controller.
    pub fn announce_switch(&self, dpid: u64) {
        self.io.lock().write(&record(REC_SWITCH_UP, dpid, 0, &[]));
    }

    /// Sends a heartbeat if the cadence says one is due. Called from the
    /// fabric runtime's poll loop.
    pub fn maybe_heartbeat(&self) {
        let mut io = self.io.lock();
        if io.last_beat.elapsed() >= self.beat_interval {
            io.last_beat = Instant::now();
            io.write(&record(REC_HEARTBEAT, 0, 0, &[]));
        }
    }

    /// A [`ReplayObserver`] that mirrors one switch's replay log to the
    /// standby, to be attached with [`Connection::set_replay_observer`].
    pub fn sink_for(&self, dpid: u64) -> Arc<dyn ReplayObserver> {
        Arc::new(ReplicaSink {
            io: Arc::clone(&self.io),
            dpid,
        })
    }
}

struct ReplicaSink {
    io: Arc<Mutex<PeerIo>>,
    dpid: u64,
}

impl ReplayObserver for ReplicaSink {
    fn logged(&self, seq: u64, fm: &FlowMod) {
        let body = encode(&OfpMessage::FlowMod(fm.clone()), 0);
        self.io
            .lock()
            .write(&record(REC_LOGGED, self.dpid, seq, &body));
    }

    fn retired(&self, acked_seq: u64) {
        self.io
            .lock()
            .write(&record(REC_RETIRED, self.dpid, acked_seq, &[]));
    }
}

/// The standby controller's half of the role protocol: consumes the
/// active's replication stream, watches for its death, and takes the
/// fabric over by replaying each switch's mirrored log tail.
pub struct StandbyController {
    transport: Box<dyn Transport>,
    rbuf: Vec<u8>,
    /// Per-switch mirror of the un-barriered replay log: `seq → FlowMod`,
    /// ordered so replay preserves the active's send order.
    mirror: HashMap<u64, BTreeMap<u64, FlowMod>>,
    /// Every switch the active announced (even ones with an empty mirror
    /// — takeover must adopt them all).
    switches: HashSet<u64>,
    last_heard: Instant,
    peer_gone: bool,
}

impl StandbyController {
    /// Wraps the transport from the active controller.
    pub fn new(transport: Box<dyn Transport>) -> StandbyController {
        StandbyController {
            transport,
            rbuf: Vec::new(),
            mirror: HashMap::new(),
            switches: HashSet::new(),
            last_heard: Instant::now(),
            peer_gone: false,
        }
    }

    /// Drains and applies every replication record currently available.
    pub fn poll(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.transport.recv(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    self.last_heard = Instant::now();
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    // The active hung up — the strongest death signal.
                    self.peer_gone = true;
                    break;
                }
            }
        }
        while self.rbuf.len() >= REC_HDR {
            let kind = self.rbuf[0];
            let dpid = u64::from_be_bytes(self.rbuf[1..9].try_into().expect("8 bytes"));
            let seq = u64::from_be_bytes(self.rbuf[9..17].try_into().expect("8 bytes"));
            let len = u32::from_be_bytes(self.rbuf[17..21].try_into().expect("4 bytes")) as usize;
            if self.rbuf.len() < REC_HDR + len {
                break; // partial record; more bytes coming
            }
            let body: Vec<u8> = self.rbuf.drain(..REC_HDR + len).skip(REC_HDR).collect();
            match kind {
                REC_HEARTBEAT => {}
                REC_SWITCH_UP => {
                    self.switches.insert(dpid);
                }
                REC_LOGGED => {
                    if let Ok((OfpMessage::FlowMod(fm), _xid)) = decode(&body) {
                        self.switches.insert(dpid);
                        self.mirror.entry(dpid).or_default().insert(seq, fm);
                    }
                }
                REC_RETIRED => {
                    if let Some(log) = self.mirror.get_mut(&dpid) {
                        log.retain(|s, _| *s > seq);
                    }
                }
                _ => {} // unknown record kinds are skipped, not fatal
            }
        }
    }

    /// True once the active is considered dead: it hung up, or no record
    /// (heartbeats included) arrived within `timeout`.
    pub fn peer_dead(&self, timeout: Duration) -> bool {
        self.peer_gone || self.last_heard.elapsed() >= timeout
    }

    /// Switches announced by the active, sorted by datapath id.
    pub fn switches(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.switches.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Mirrored (un-barriered) flow mods held for `dpid`.
    pub fn pending(&self, dpid: u64) -> usize {
        self.mirror.get(&dpid).map_or(0, BTreeMap::len)
    }

    /// Assumes the active role: dials every announced switch through
    /// `connect`, handshakes, and replays its mirrored log tail through
    /// the ordinary barrier-fenced path (`send_flow_mods` + `barrier`),
    /// so the replayed mods land in the *new* connection's replay log and
    /// are retired by the barrier like any other batch. Returns the ready
    /// connections as `(dpid, connection)`, in dpid order.
    ///
    /// Replay is idempotent by construction: OF 1.0 `Add` replaces, so a
    /// mod the switch already committed is a no-op with no `FlowRemoved`.
    pub fn take_over(
        &mut self,
        timeout: Duration,
        mut connect: impl FnMut(u64) -> Result<Box<dyn Transport>>,
    ) -> Result<Vec<(u64, Connection)>> {
        let mut out = Vec::new();
        for dpid in self.switches() {
            let conn = Connection::new(connect(dpid)?);
            let features = conn.handshake(timeout)?;
            if features.datapath_id != dpid {
                return Err(OfError::Unknown(format!(
                    "dialled switch {dpid:#x} but reached {:#x}",
                    features.datapath_id
                )));
            }
            let mods: Vec<FlowMod> = self
                .mirror
                .get(&dpid)
                .map(|log| log.values().cloned().collect())
                .unwrap_or_default();
            if !mods.is_empty() {
                conn.send_flow_mods(&mods)?;
                conn.barrier(timeout)?;
                self.mirror.remove(&dpid);
            }
            out.push((dpid, conn));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SwitchLink;
    use crate::fmatch::FlowMatch;
    use crate::transport::loopback;
    use crate::types::PortNo;
    use crate::Action;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A scripted in-test switch: answers handshake/echo/barrier frames
    /// and keeps every flow mod it accepted.
    struct MiniSwitch {
        link: SwitchLink,
        dpid: u64,
        mods: Vec<FlowMod>,
    }

    impl MiniSwitch {
        fn pump(&mut self) {
            while let Some(Ok((msg, xid))) = self.link.try_recv() {
                match msg {
                    OfpMessage::Hello => self.link.send(&OfpMessage::Hello, xid).unwrap(),
                    OfpMessage::FeaturesRequest => self
                        .link
                        .send(
                            &OfpMessage::FeaturesReply {
                                datapath_id: self.dpid,
                                ports: vec![1, 2],
                            },
                            xid,
                        )
                        .unwrap(),
                    OfpMessage::EchoRequest(d) => {
                        self.link.send(&OfpMessage::EchoReply(d), xid).unwrap()
                    }
                    OfpMessage::BarrierRequest => {
                        self.link.send(&OfpMessage::BarrierReply, xid).unwrap()
                    }
                    OfpMessage::FlowMod(fm) => self.mods.push(fm),
                    _ => {}
                }
            }
        }
    }

    fn fm(cookie: u64) -> FlowMod {
        FlowMod::add(
            FlowMatch::in_port(PortNo(cookie as u16)),
            100,
            vec![Action::Output(PortNo(99))],
        )
        .with_cookie(cookie)
    }

    #[test]
    fn standby_mirrors_logged_and_retired() {
        let (a_end, s_end) = loopback();
        let active = ActivePeer::new(Box::new(a_end));
        let mut standby = StandbyController::new(Box::new(s_end));

        active.announce_switch(0xd1);
        let sink = active.sink_for(0xd1);
        sink.logged(1, &fm(0xa));
        sink.logged(2, &fm(0xb));
        sink.logged(3, &fm(0xc));
        standby.poll();
        assert_eq!(standby.switches(), vec![0xd1]);
        assert_eq!(standby.pending(0xd1), 3);

        sink.retired(2); // a barrier covered seqs 1 and 2
        standby.poll();
        assert_eq!(standby.pending(0xd1), 1);
    }

    #[test]
    fn standby_detects_hangup_and_heartbeat_silence() {
        let (a_end, s_end) = loopback();
        let active = ActivePeer::new(Box::new(a_end));
        let mut standby = StandbyController::new(Box::new(s_end));
        active.maybe_heartbeat();
        standby.poll();
        assert!(!standby.peer_dead(Duration::from_secs(60)));
        // Silence-based detection.
        std::thread::sleep(Duration::from_millis(15));
        assert!(standby.peer_dead(Duration::from_millis(10)));
        // Hang-up beats any timeout.
        drop(active);
        standby.poll();
        assert!(standby.peer_dead(Duration::from_secs(60)));
    }

    #[test]
    fn take_over_replays_the_mirror_exactly_once() {
        let (a_end, s_end) = loopback();
        let active = ActivePeer::new(Box::new(a_end));
        let mut standby = StandbyController::new(Box::new(s_end));

        // The active logged 3 mods on switch 0xd1 and barriered the first.
        let sink = active.sink_for(0xd1);
        sink.logged(1, &fm(0x10));
        sink.retired(1);
        sink.logged(2, &fm(0x20));
        sink.logged(3, &fm(0x30));
        drop(sink); // the sink shares the peer transport's lifetime
        drop(active); // crash

        standby.poll();
        assert!(standby.peer_dead(Duration::from_secs(60)));
        assert_eq!(standby.pending(0xd1), 2);

        // Takeover dials the switch over a fresh loopback; a helper
        // thread plays the switch until the barrier lands.
        let (c_end, sw_end) = loopback();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            let mut sw = MiniSwitch {
                link: SwitchLink::new(Box::new(sw_end)),
                dpid: 0xd1,
                mods: Vec::new(),
            };
            while !done2.load(Ordering::Acquire) {
                sw.pump();
                std::thread::sleep(Duration::from_millis(1));
            }
            sw.mods
        });
        let mut handed = Some(Box::new(c_end) as Box<dyn Transport>);
        let conns = standby
            .take_over(Duration::from_secs(5), |dpid| {
                assert_eq!(dpid, 0xd1);
                Ok(handed.take().expect("exactly one switch to dial"))
            })
            .unwrap();
        done.store(true, Ordering::Release);
        let mods = t.join().unwrap();

        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].0, 0xd1);
        assert_eq!(conns[0].1.unacked_flow_mods(), 0, "barrier retired replay");
        // Only the un-retired tail was replayed, in order, once each.
        let cookies: Vec<u64> = mods.iter().map(|m| m.cookie).collect();
        assert_eq!(cookies, vec![0x20, 0x30]);
        assert_eq!(standby.pending(0xd1), 0, "mirror consumed by takeover");
    }
}
