//! OpenFlow 1.0 protocol messages (the subset the reproduction exercises).

use crate::action::Action;
use crate::fmatch::FlowMatch;
use crate::types::PortNo;

/// `ofp_flow_mod` commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Insert a new rule (or overwrite an identical one).
    Add,
    /// Modify actions of all matching rules (loose match).
    Modify,
    /// Modify actions of the rule with identical match and priority.
    ModifyStrict,
    /// Delete all matching rules (loose match).
    Delete,
    /// Delete the rule with identical match and priority.
    DeleteStrict,
}

/// A flow table modification.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMod {
    pub command: FlowModCommand,
    pub fmatch: FlowMatch,
    pub priority: u16,
    pub actions: Vec<Action>,
    pub cookie: u64,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    /// For `Delete`/`DeleteStrict`: restrict to rules that output to this
    /// port (`PortNo::NONE` disables the filter).
    pub out_port: PortNo,
}

impl FlowMod {
    /// An `Add` with sensible defaults (no timeouts, cookie 0).
    pub fn add(fmatch: FlowMatch, priority: u16, actions: Vec<Action>) -> FlowMod {
        FlowMod {
            command: FlowModCommand::Add,
            fmatch,
            priority,
            actions,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            out_port: PortNo::NONE,
        }
    }

    /// Sets the cookie (builder style).
    pub fn with_cookie(mut self, cookie: u64) -> FlowMod {
        self.cookie = cookie;
        self
    }

    /// A strict delete of a specific rule.
    pub fn delete_strict(fmatch: FlowMatch, priority: u16) -> FlowMod {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            fmatch,
            priority,
            actions: Vec::new(),
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            out_port: PortNo::NONE,
        }
    }

    /// A loose delete of everything covered by `fmatch`.
    pub fn delete(fmatch: FlowMatch) -> FlowMod {
        FlowMod {
            command: FlowModCommand::Delete,
            fmatch,
            priority: 0,
            actions: Vec::new(),
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            out_port: PortNo::NONE,
        }
    }
}

/// Why a packet was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// No rule matched.
    NoMatch,
    /// An explicit `Output(CONTROLLER)` action fired.
    Action,
}

/// A packet punted to the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketIn {
    pub in_port: PortNo,
    pub reason: PacketInReason,
    pub data: Vec<u8>,
}

/// A packet injected by the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketOut {
    /// Nominal ingress port for `Output(IN_PORT)`/`TABLE` processing.
    pub in_port: PortNo,
    pub actions: Vec<Action>,
    pub data: Vec<u8>,
}

/// Notification that a rule was evicted (timeout or delete).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRemoved {
    pub fmatch: FlowMatch,
    pub priority: u16,
    pub cookie: u64,
    pub packet_count: u64,
    pub byte_count: u64,
}

/// A flow statistics request (loose match filter).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStatsRequest {
    pub fmatch: FlowMatch,
    /// Restrict to rules outputting to this port; `NONE` disables.
    pub out_port: PortNo,
}

/// One rule's statistics in a reply.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStatsEntry {
    pub fmatch: FlowMatch,
    pub priority: u16,
    pub cookie: u64,
    pub duration_sec: u32,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    pub packet_count: u64,
    pub byte_count: u64,
    pub actions: Vec<Action>,
}

/// A port statistics request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortStatsRequest {
    /// `PortNo::NONE` requests all ports.
    pub port_no: PortNo,
}

/// A port configuration change (`ofp_port_mod`). The reproduction models
/// the one bit the paper's transparency story needs: `OFPPC_PORT_DOWN`,
/// i.e. administratively disabling a port ("turn them on/off" in §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortMod {
    pub port_no: PortNo,
    /// Set (true) or clear (false) `OFPPC_PORT_DOWN`.
    pub down: bool,
}

/// Why a [`PortStatus`] was emitted (`ofp_port_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortStatusReason {
    /// The port was added.
    Add,
    /// The port was removed.
    Delete,
    /// Some attribute (e.g. admin state) changed.
    Modify,
}

/// Asynchronous notification of a port change (`OFPT_PORT_STATUS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortStatus {
    pub reason: PortStatusReason,
    pub port_no: u16,
    pub name: String,
    /// `OFPPC_PORT_DOWN` state after the change.
    pub down: bool,
}

/// An aggregate statistics request (`OFPST_AGGREGATE`): one total over all
/// rules passing the loose filter.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateStatsRequest {
    pub fmatch: FlowMatch,
    /// Restrict to rules outputting to this port; `NONE` disables.
    pub out_port: PortNo,
}

/// The aggregate statistics reply body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateStats {
    pub packet_count: u64,
    pub byte_count: u64,
    pub flow_count: u32,
}

/// One table's statistics (`OFPST_TABLE` reply entry). The reproduction has
/// a single table (id 0), like OF 1.0 OVS in its default profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStatsEntry {
    pub table_id: u8,
    pub name: String,
    pub max_entries: u32,
    pub active_count: u32,
    /// Packets looked up in the table.
    pub lookup_count: u64,
    /// Packets that hit a rule.
    pub matched_count: u64,
}

/// Switch description (`OFPST_DESC` reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescStats {
    pub manufacturer: String,
    pub hardware: String,
    pub software: String,
    pub serial: String,
    pub datapath: String,
}

/// One port's statistics in a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStatsEntry {
    pub port_no: u16,
    pub rx_packets: u64,
    pub tx_packets: u64,
    pub rx_bytes: u64,
    pub tx_bytes: u64,
    pub rx_dropped: u64,
    pub tx_dropped: u64,
}

/// Every OpenFlow message the control channel carries.
#[derive(Debug, Clone, PartialEq)]
pub enum OfpMessage {
    Hello,
    EchoRequest(Vec<u8>),
    EchoReply(Vec<u8>),
    FeaturesRequest,
    /// Datapath id + port numbers present on the switch.
    FeaturesReply {
        datapath_id: u64,
        ports: Vec<u16>,
    },
    FlowMod(FlowMod),
    PacketIn(PacketIn),
    PacketOut(PacketOut),
    FlowRemoved(FlowRemoved),
    FlowStatsRequest(FlowStatsRequest),
    FlowStatsReply(Vec<FlowStatsEntry>),
    PortStatsRequest(PortStatsRequest),
    PortStatsReply(Vec<PortStatsEntry>),
    PortMod(PortMod),
    PortStatus(PortStatus),
    AggregateStatsRequest(AggregateStatsRequest),
    AggregateStatsReply(AggregateStats),
    TableStatsRequest,
    TableStatsReply(Vec<TableStatsEntry>),
    DescStatsRequest,
    DescStatsReply(DescStats),
    BarrierRequest,
    BarrierReply,
    /// An error with the raw (type, code) pair of OF 1.0.
    Error {
        err_type: u16,
        code: u16,
    },
}

impl OfpMessage {
    /// The OF 1.0 message-type discriminant for the header.
    pub fn type_id(&self) -> u8 {
        match self {
            OfpMessage::Hello => 0,
            OfpMessage::Error { .. } => 1,
            OfpMessage::EchoRequest(_) => 2,
            OfpMessage::EchoReply(_) => 3,
            OfpMessage::FeaturesRequest => 5,
            OfpMessage::FeaturesReply { .. } => 6,
            OfpMessage::PacketIn(_) => 10,
            OfpMessage::FlowRemoved(_) => 11,
            OfpMessage::PortStatus(_) => 12,
            OfpMessage::PacketOut(_) => 13,
            OfpMessage::FlowMod(_) => 14,
            OfpMessage::PortMod(_) => 15,
            OfpMessage::FlowStatsRequest(_)
            | OfpMessage::PortStatsRequest(_)
            | OfpMessage::AggregateStatsRequest(_)
            | OfpMessage::TableStatsRequest
            | OfpMessage::DescStatsRequest => 16,
            OfpMessage::FlowStatsReply(_)
            | OfpMessage::PortStatsReply(_)
            | OfpMessage::AggregateStatsReply(_)
            | OfpMessage::TableStatsReply(_)
            | OfpMessage::DescStatsReply(_) => 17,
            OfpMessage::BarrierRequest => 18,
            OfpMessage::BarrierReply => 19,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_mod_builders() {
        let add = FlowMod::add(
            FlowMatch::in_port(PortNo(1)),
            100,
            vec![Action::Output(PortNo(2))],
        )
        .with_cookie(7);
        assert_eq!(add.command, FlowModCommand::Add);
        assert_eq!(add.cookie, 7);
        assert_eq!(add.out_port, PortNo::NONE);

        let del = FlowMod::delete_strict(FlowMatch::in_port(PortNo(1)), 100);
        assert_eq!(del.command, FlowModCommand::DeleteStrict);
        assert!(del.actions.is_empty());
    }

    #[test]
    fn type_ids_match_of10() {
        assert_eq!(OfpMessage::Hello.type_id(), 0);
        assert_eq!(OfpMessage::BarrierRequest.type_id(), 18);
        assert_eq!(
            OfpMessage::FlowMod(FlowMod::delete(FlowMatch::any())).type_id(),
            14
        );
    }
}
