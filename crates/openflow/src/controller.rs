//! The switch's end of the control channel.
//!
//! [`SwitchLink`] is the byte-stream counterpart of
//! [`crate::connection::Connection`]: it owns a [`crate::Transport`], cuts
//! the incoming stream into frames with a [`crate::Framer`] and decodes
//! them on demand. [`framed_link`] wires a connected controller/switch
//! pair over an in-process byte stream. (The pre-wire typed-channel
//! aliases `ControllerHandle`/`control_link` are gone; the framed path is
//! the only control channel.)

use crate::codec::{decode, encode};
use crate::connection::Connection;
use crate::framer::Framer;
use crate::messages::OfpMessage;
use crate::transport::{loopback, Transport};
use crate::{OfError, Result};
use parking_lot::Mutex;

/// The switch's end of the control link: a framed byte stream.
pub struct SwitchLink {
    inner: Mutex<SwitchIo>,
}

struct SwitchIo {
    transport: Box<dyn Transport>,
    framer: Framer,
    /// Set once a framing error has desynced the stream; reported once,
    /// then the link behaves as disconnected.
    poisoned: Option<OfError>,
}

impl SwitchLink {
    /// Wraps a transport as the switch endpoint.
    pub fn new(transport: Box<dyn Transport>) -> SwitchLink {
        SwitchLink {
            inner: Mutex::new(SwitchIo {
                transport,
                framer: Framer::new(),
                poisoned: None,
            }),
        }
    }

    /// Bytes from the controller not yet consumed by the switch — the
    /// control-idle signal used by convergence waits. Counts both bytes
    /// still in the transport and partial frames in the framer.
    pub fn pending(&self) -> usize {
        let io = self.inner.lock();
        io.transport.pending_bytes() + io.framer.buffered()
    }

    /// Next message from the controller, if any.
    ///
    /// Decoding errors of a *complete* frame are recoverable (the caller
    /// typically answers with an OF error message and continues); framing
    /// errors poison the stream — reported once, then
    /// [`OfError::Disconnected`].
    pub fn try_recv(&self) -> Option<Result<(OfpMessage, u32)>> {
        let mut io = self.inner.lock();
        if let Some(e) = io.poisoned.take() {
            io.poisoned = Some(OfError::Disconnected);
            return Some(Err(e));
        }
        loop {
            match io.framer.poll_frame() {
                Ok(Some(frame)) => return Some(decode(&frame)),
                Ok(None) => {}
                Err(e) => {
                    io.poisoned = Some(OfError::Disconnected);
                    return Some(Err(e));
                }
            }
            let mut chunk = [0u8; 4096];
            match io.transport.recv(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => io.framer.push(&chunk[..n]),
                Err(e) => return Some(Err(e)),
            }
        }
    }

    /// Sends a message to the controller.
    pub fn send(&self, msg: &OfpMessage, xid: u32) -> Result<()> {
        let io = self.inner.lock();
        let bytes = encode(msg, xid);
        let mut sent = 0;
        while sent < bytes.len() {
            match io.transport.send(&bytes[sent..]) {
                Ok(0) => std::thread::yield_now(), // saturated; retry
                Ok(n) => sent += n,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Creates a connected controller/switch pair over an in-process framed
/// byte stream. The connection starts its handshake immediately; the
/// switch end answers it on its normal poll loop.
pub fn framed_link() -> (Connection, SwitchLink) {
    let (c_end, s_end) = loopback();
    (
        Connection::new(Box::new(c_end)),
        SwitchLink::new(Box::new(s_end)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::*;
    use crate::types::PortNo;
    use crate::{Action, FlowMatch};
    use std::time::Duration;

    /// Consumes the handshake frames the connection emits at creation
    /// (`Hello` then `FeaturesRequest`), answering both.
    fn answer_handshake(sw: &SwitchLink) {
        let (msg, xid) = sw.try_recv().unwrap().unwrap();
        assert_eq!(msg, OfpMessage::Hello);
        sw.send(&OfpMessage::Hello, xid).unwrap();
        let (msg, xid) = sw.try_recv().unwrap().unwrap();
        assert_eq!(msg, OfpMessage::FeaturesRequest);
        sw.send(
            &OfpMessage::FeaturesReply {
                datapath_id: 1,
                ports: vec![],
            },
            xid,
        )
        .unwrap();
    }

    #[test]
    fn controller_and_switch_exchange_framed_bytes() {
        let (ctrl, sw) = framed_link();
        answer_handshake(&sw);
        let xid = ctrl
            .add_flow(
                FlowMatch::in_port(PortNo(1)),
                100,
                vec![Action::Output(PortNo(2))],
                7,
            )
            .unwrap();
        let (msg, got_xid) = sw.try_recv().unwrap().unwrap();
        assert_eq!(got_xid, xid);
        match msg {
            OfpMessage::FlowMod(fm) => {
                assert_eq!(fm.cookie, 7);
                assert_eq!(fm.fmatch.only_in_port(), Some(PortNo(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(sw.try_recv().is_none());
        assert_eq!(sw.pending(), 0);
    }

    #[test]
    fn wait_reply_skips_unrelated_messages() {
        let (ctrl, sw) = framed_link();
        answer_handshake(&sw);
        let xid = ctrl.send(&OfpMessage::BarrierRequest).unwrap();
        // Switch sends an async packet-in first, then the barrier reply.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(3),
                reason: PacketInReason::NoMatch,
                data: vec![1, 2, 3],
            }),
            999,
        )
        .unwrap();
        let (req, bxid) = sw.try_recv().unwrap().unwrap();
        assert_eq!(req, OfpMessage::BarrierRequest);
        assert_eq!(bxid, xid);
        sw.send(&OfpMessage::BarrierReply, xid).unwrap();
        let reply = ctrl.wait_reply(xid, Duration::from_secs(1)).unwrap();
        assert_eq!(reply, OfpMessage::BarrierReply);
        // The stashed packet-in is still deliverable.
        let (stashed, sxid) = ctrl.try_recv().unwrap().unwrap();
        assert_eq!(sxid, 999);
        assert!(matches!(stashed, OfpMessage::PacketIn(_)));
    }

    #[test]
    fn disconnect_surfaces() {
        let (ctrl, sw) = framed_link();
        drop(sw);
        assert!(matches!(
            ctrl.send(&OfpMessage::EchoRequest(vec![])),
            Err(OfError::Disconnected)
        ));
    }

    #[test]
    fn xids_are_unique_and_increasing() {
        let (ctrl, sw) = framed_link();
        answer_handshake(&sw);
        let a = ctrl.send(&OfpMessage::EchoRequest(vec![1])).unwrap();
        let b = ctrl.send(&OfpMessage::EchoRequest(vec![2])).unwrap();
        assert!(b > a);
        let (_m, xa) = sw.try_recv().unwrap().unwrap();
        let (_m, xb) = sw.try_recv().unwrap().unwrap();
        assert_eq!((xa, xb), (a, b));
    }

    #[test]
    fn switch_link_poisons_on_bad_version_then_disconnects() {
        use crate::transport::ScriptedTransport;
        let mut stream = encode(&OfpMessage::Hello, 1);
        stream.extend([0x09, 0, 0, 8, 0, 0, 0, 0]); // bad version byte
        let sw = SwitchLink::new(Box::new(ScriptedTransport::new(stream)));
        assert!(sw.try_recv().unwrap().is_ok());
        assert_eq!(sw.try_recv().unwrap().unwrap_err(), OfError::BadVersion(9));
        assert_eq!(
            sw.try_recv().unwrap().unwrap_err(),
            OfError::Disconnected,
            "poisoned stream must not spin the poll loop"
        );
    }
}
