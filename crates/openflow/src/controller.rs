//! The controller ↔ switch control link.
//!
//! Both directions carry *encoded* OF 1.0 bytes (see [`crate::codec`]); the
//! [`ControllerHandle`] offers typed convenience methods on top, with xid
//! allocation and synchronous request/reply helpers the tests and examples
//! use to act as a minimal controller.

use crate::codec::{decode, encode};
use crate::messages::*;
use crate::types::PortNo;
use crate::{Action, FlowMatch, OfError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// The switch's end of the control link: raw encoded frames in and out.
pub struct SwitchLink {
    rx: Receiver<Vec<u8>>,
    tx: Sender<Vec<u8>>,
}

impl SwitchLink {
    /// Messages from the controller not yet picked up by the switch.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Next message from the controller, if any.
    pub fn try_recv(&self) -> Option<Result<(OfpMessage, u32)>> {
        match self.rx.try_recv() {
            Ok(bytes) => Some(decode(&bytes)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(OfError::Disconnected)),
        }
    }

    /// Sends a message to the controller.
    pub fn send(&self, msg: &OfpMessage, xid: u32) -> Result<()> {
        self.tx
            .send(encode(msg, xid))
            .map_err(|_| OfError::Disconnected)
    }
}

/// The controller's end of the control link.
pub struct ControllerHandle {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    next_xid: AtomicU32,
    /// Messages that arrived while waiting for a specific reply.
    stash: parking_lot::Mutex<Vec<(OfpMessage, u32)>>,
}

/// Creates a connected controller/switch pair.
pub fn control_link() -> (ControllerHandle, SwitchLink) {
    let (ctx, srx) = unbounded();
    let (stx, crx) = unbounded();
    (
        ControllerHandle {
            tx: ctx,
            rx: crx,
            next_xid: AtomicU32::new(1),
            stash: parking_lot::Mutex::new(Vec::new()),
        },
        SwitchLink { rx: srx, tx: stx },
    )
}

impl ControllerHandle {
    fn xid(&self) -> u32 {
        self.next_xid.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends any message, returning the xid used.
    pub fn send(&self, msg: &OfpMessage) -> Result<u32> {
        let xid = self.xid();
        self.tx
            .send(encode(msg, xid))
            .map_err(|_| OfError::Disconnected)?;
        Ok(xid)
    }

    /// Non-blocking receive of asynchronous messages (packet-in etc.).
    pub fn try_recv(&self) -> Option<Result<(OfpMessage, u32)>> {
        if let Some(m) = self.stash.lock().pop() {
            return Some(Ok(m));
        }
        match self.rx.try_recv() {
            Ok(bytes) => Some(decode(&bytes)),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(OfError::Disconnected)),
        }
    }

    /// Waits for the reply carrying `xid`, stashing unrelated messages.
    pub fn wait_reply(&self, xid: u32, timeout: Duration) -> Result<OfpMessage> {
        // The reply may already have been stashed by another helper.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|(_m, x)| *x == xid) {
                return Ok(stash.remove(pos).0);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(OfError::Disconnected)?;
            let bytes = self
                .rx
                .recv_timeout(remaining)
                .map_err(|_| OfError::Disconnected)?;
            let (msg, got_xid) = decode(&bytes)?;
            if got_xid == xid {
                return Ok(msg);
            }
            self.stash.lock().push((msg, got_xid));
        }
    }

    /// Installs a flow: `Add` with the given match/priority/actions/cookie.
    pub fn add_flow(
        &self,
        fmatch: FlowMatch,
        priority: u16,
        actions: Vec<Action>,
        cookie: u64,
    ) -> Result<u32> {
        self.send(&OfpMessage::FlowMod(
            FlowMod::add(fmatch, priority, actions).with_cookie(cookie),
        ))
    }

    /// Strict-deletes a flow.
    pub fn del_flow_strict(&self, fmatch: FlowMatch, priority: u16) -> Result<u32> {
        self.send(&OfpMessage::FlowMod(FlowMod::delete_strict(
            fmatch, priority,
        )))
    }

    /// Requests statistics for all flows and waits for the reply.
    pub fn flow_stats(&self, timeout: Duration) -> Result<Vec<FlowStatsEntry>> {
        let xid = self.send(&OfpMessage::FlowStatsRequest(FlowStatsRequest {
            fmatch: FlowMatch::any(),
            out_port: PortNo::NONE,
        }))?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::FlowStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests statistics for all ports and waits for the reply.
    pub fn port_stats(&self, timeout: Duration) -> Result<Vec<PortStatsEntry>> {
        let xid = self.send(&OfpMessage::PortStatsRequest(PortStatsRequest {
            port_no: PortNo::NONE,
        }))?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::PortStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends a barrier and waits for it to complete.
    pub fn barrier(&self, timeout: Duration) -> Result<()> {
        let xid = self.send(&OfpMessage::BarrierRequest)?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::BarrierReply => Ok(()),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Injects a packet via packet-out.
    pub fn packet_out(&self, data: Vec<u8>, actions: Vec<Action>) -> Result<u32> {
        self.send(&OfpMessage::PacketOut(PacketOut {
            in_port: PortNo::NONE,
            actions,
            data,
        }))
    }

    /// Administratively brings a port down (or back up) via `port_mod`.
    pub fn set_port_down(&self, port_no: PortNo, down: bool) -> Result<u32> {
        self.send(&OfpMessage::PortMod(PortMod { port_no, down }))
    }

    /// Requests aggregate statistics over rules covered by `fmatch`.
    pub fn aggregate_stats(&self, fmatch: FlowMatch, timeout: Duration) -> Result<AggregateStats> {
        let xid = self.send(&OfpMessage::AggregateStatsRequest(AggregateStatsRequest {
            fmatch,
            out_port: PortNo::NONE,
        }))?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::AggregateStatsReply(agg) => Ok(agg),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests per-table statistics.
    pub fn table_stats(&self, timeout: Duration) -> Result<Vec<TableStatsEntry>> {
        let xid = self.send(&OfpMessage::TableStatsRequest)?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::TableStatsReply(entries) => Ok(entries),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests the switch description.
    pub fn desc_stats(&self, timeout: Duration) -> Result<DescStats> {
        let xid = self.send(&OfpMessage::DescStatsRequest)?;
        match self.wait_reply(xid, timeout)? {
            OfpMessage::DescStatsReply(desc) => Ok(desc),
            other => Err(OfError::Unknown(format!("unexpected reply {other:?}"))),
        }
    }

    /// Drains any queued asynchronous [`PortStatus`] notifications,
    /// stashing unrelated messages for later delivery.
    pub fn drain_port_status(&self) -> Vec<PortStatus> {
        let mut out = Vec::new();
        // Previously stashed PortStatus messages first.
        {
            let mut stash = self.stash.lock();
            stash.retain(|(msg, _xid)| {
                if let OfpMessage::PortStatus(ps) = msg {
                    out.push(ps.clone());
                    false
                } else {
                    true
                }
            });
        }
        // Then whatever sits in the channel (stash non-PortStatus messages
        // rather than dropping them).
        while let Ok(bytes) = self.rx.try_recv() {
            match decode(&bytes) {
                Ok((OfpMessage::PortStatus(ps), _xid)) => out.push(ps),
                Ok((msg, xid)) => self.stash.lock().push((msg, xid)),
                Err(_) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_and_switch_exchange_encoded_bytes() {
        let (ctrl, sw) = control_link();
        let xid = ctrl
            .add_flow(
                FlowMatch::in_port(PortNo(1)),
                100,
                vec![Action::Output(PortNo(2))],
                7,
            )
            .unwrap();
        let (msg, got_xid) = sw.try_recv().unwrap().unwrap();
        assert_eq!(got_xid, xid);
        match msg {
            OfpMessage::FlowMod(fm) => {
                assert_eq!(fm.cookie, 7);
                assert_eq!(fm.fmatch.only_in_port(), Some(PortNo(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(sw.try_recv().is_none());
    }

    #[test]
    fn wait_reply_skips_unrelated_messages() {
        let (ctrl, sw) = control_link();
        let xid = ctrl.send(&OfpMessage::BarrierRequest).unwrap();
        // Switch sends an async packet-in first, then the barrier reply.
        sw.send(
            &OfpMessage::PacketIn(PacketIn {
                in_port: PortNo(3),
                reason: PacketInReason::NoMatch,
                data: vec![1, 2, 3],
            }),
            999,
        )
        .unwrap();
        sw.send(&OfpMessage::BarrierReply, xid).unwrap();
        let reply = ctrl.wait_reply(xid, Duration::from_secs(1)).unwrap();
        assert_eq!(reply, OfpMessage::BarrierReply);
        // The stashed packet-in is still deliverable.
        let (stashed, sxid) = ctrl.try_recv().unwrap().unwrap();
        assert_eq!(sxid, 999);
        assert!(matches!(stashed, OfpMessage::PacketIn(_)));
    }

    #[test]
    fn disconnect_surfaces() {
        let (ctrl, sw) = control_link();
        drop(sw);
        assert!(matches!(
            ctrl.send(&OfpMessage::Hello),
            Err(OfError::Disconnected)
        ));
    }

    #[test]
    fn xids_are_unique_and_increasing() {
        let (ctrl, sw) = control_link();
        let a = ctrl.send(&OfpMessage::Hello).unwrap();
        let b = ctrl.send(&OfpMessage::Hello).unwrap();
        assert!(b > a);
        let (_m, xa) = sw.try_recv().unwrap().unwrap();
        let (_m, xb) = sw.try_recv().unwrap().unwrap();
        assert_eq!((xa, xb), (a, b));
    }
}
