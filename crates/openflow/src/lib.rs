//! # openflow
//!
//! The slice of OpenFlow 1.0 the reproduction needs — which is everything the
//! paper's control plane touches:
//!
//! * the 12-tuple [`FlowMatch`] with per-field wildcards and CIDR prefixes,
//! * [`Action`]s (output, field rewrites, flood, controller),
//! * [`FlowMod`] with add/modify/delete (strict and loose) semantics,
//! * flow/port statistics requests and replies,
//! * `packet-out` / `packet-in`, barrier, echo and features exchanges,
//! * a byte-level wire [`codec`] for all of the above, faithful to the
//!   OF 1.0 framing (8-byte header, 40-byte `ofp_match`, TLV action list) —
//!   the controller and the switch genuinely exchange encoded bytes, which
//!   is what makes the paper's *transparency to the controller* claim
//!   testable rather than assumed,
//! * a [`controller`] handle pairing a channel transport with xid tracking.

pub mod action;
pub mod app;
pub mod codec;
pub mod connection;
pub mod controller;
pub mod fmatch;
pub mod framer;
pub mod messages;
pub mod transport;
pub mod types;
pub mod wire;

pub use action::Action;
pub use app::{ControllerApp, ControllerRuntime, LearningSwitch};
pub use connection::{Connection, ConnectionState, SwitchFeatures};
pub use controller::{framed_link, SwitchLink};
pub use fmatch::FlowMatch;
pub use framer::Framer;
pub use messages::{
    AggregateStats, AggregateStatsRequest, DescStats, FlowMod, FlowModCommand, FlowRemoved,
    FlowStatsEntry, FlowStatsRequest, OfpMessage, PacketIn, PacketInReason, PacketOut, PortMod,
    PortStatsEntry, PortStatsRequest, PortStatus, PortStatusReason, TableStatsEntry,
};
pub use transport::{
    faulty_pair, loopback, FaultConfig, FaultControl, LoopbackEnd, ScriptedTransport, Transport,
};
pub use types::PortNo;
pub use wire::{OfpHeader, OfpMarshal, OFP_VERSION};

/// Errors produced by codec or transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfError {
    /// Buffer ended before the message did.
    Truncated,
    /// An inner length field disagrees with the payload.
    BadLength,
    /// The header's version byte is not OpenFlow 1.0.
    BadVersion(u8),
    /// A frame claims a length above the framer's configured maximum.
    Oversized { len: usize, max: usize },
    /// Unknown message type, action type or enum discriminant.
    Unknown(String),
    /// The peer hung up.
    Disconnected,
}

impl std::fmt::Display for OfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfError::Truncated => write!(f, "message truncated"),
            OfError::BadLength => write!(f, "inconsistent length field"),
            OfError::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            OfError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            OfError::Unknown(what) => write!(f, "unknown value: {what}"),
            OfError::Disconnected => write!(f, "control channel disconnected"),
        }
    }
}

impl std::error::Error for OfError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OfError>;
