//! # openflow
//!
//! The slice of OpenFlow 1.0 the reproduction needs — which is everything the
//! paper's control plane touches:
//!
//! * the 12-tuple [`FlowMatch`] with per-field wildcards and CIDR prefixes,
//! * [`Action`]s (output, field rewrites, flood, controller),
//! * [`FlowMod`] with add/modify/delete (strict and loose) semantics,
//! * flow/port statistics requests and replies,
//! * `packet-out` / `packet-in`, barrier, echo and features exchanges,
//! * a byte-level wire [`codec`] for all of the above, faithful to the
//!   OF 1.0 framing (8-byte header, 40-byte `ofp_match`, TLV action list) —
//!   the controller and the switch genuinely exchange encoded bytes, which
//!   is what makes the paper's *transparency to the controller* claim
//!   testable rather than assumed,
//! * a [`controller`] handle pairing a channel transport with xid tracking.

pub mod action;
pub mod codec;
pub mod controller;
pub mod fmatch;
pub mod messages;
pub mod types;

pub use action::Action;
pub use controller::{control_link, ControllerHandle, SwitchLink};
pub use fmatch::FlowMatch;
pub use messages::{
    AggregateStats, AggregateStatsRequest, DescStats, FlowMod, FlowModCommand, FlowRemoved,
    FlowStatsEntry, FlowStatsRequest, OfpMessage, PacketIn, PacketInReason, PacketOut, PortMod,
    PortStatsEntry, PortStatsRequest, PortStatus, PortStatusReason, TableStatsEntry,
};
pub use types::PortNo;

/// Errors produced by codec or transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfError {
    /// Buffer ended before the message did.
    Truncated,
    /// An inner length field disagrees with the payload.
    BadLength,
    /// Unknown message type, action type or enum discriminant.
    Unknown(String),
    /// The peer hung up.
    Disconnected,
}

impl std::fmt::Display for OfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfError::Truncated => write!(f, "message truncated"),
            OfError::BadLength => write!(f, "inconsistent length field"),
            OfError::Unknown(what) => write!(f, "unknown value: {what}"),
            OfError::Disconnected => write!(f, "control channel disconnected"),
        }
    }
}

impl std::error::Error for OfError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OfError>;
