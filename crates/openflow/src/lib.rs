//! # openflow
//!
//! The slice of OpenFlow 1.0 the reproduction needs — which is everything the
//! paper's control plane touches:
//!
//! * the 12-tuple [`FlowMatch`] with per-field wildcards and CIDR prefixes,
//! * [`Action`]s (output, field rewrites, flood, controller),
//! * [`FlowMod`] with add/modify/delete (strict and loose) semantics,
//! * flow/port statistics requests and replies,
//! * `packet-out` / `packet-in`, barrier, echo and features exchanges,
//! * a byte-level wire [`codec`] for all of the above, faithful to the
//!   OF 1.0 framing (8-byte header, 40-byte `ofp_match`, TLV action list) —
//!   the controller and the switch genuinely exchange encoded bytes, which
//!   is what makes the paper's *transparency to the controller* claim
//!   testable rather than assumed,
//! * a [`controller`] handle pairing a channel transport with xid tracking.
//!
//! The crate layers bottom-up, and each layer is swappable:
//!
//! * [`transport`] moves raw bytes with socket semantics (partial I/O,
//!   would-block, disconnects) — in-memory [`loopback`], fault-injecting
//!   [`faulty_pair`], scripted replay, and a real TCP socket
//!   ([`tcp::TcpTransport`], loopback-bound in tests);
//! * [`framer`] recovers OF 1.0 frame boundaries from the stream and
//!   poisons itself permanently on desync (a framing error loses the
//!   stream position — there is no resynchronising OF 1.0);
//! * [`connection`] is the controller-side session state machine:
//!   handshake, xid pairing, echo keepalive, flow-mod batching, and a
//!   barrier-fenced replay log that survives reconnects;
//! * [`app`] splits policy from event loop: a [`ControllerApp`] drives
//!   one switch via [`ControllerRuntime`]; a [`app::FabricApp`] drives a
//!   whole fabric of N switches via [`app::FabricRuntime`], with a
//!   datapath-id registry and fair per-switch polling;
//! * [`failover`] is the active/standby role protocol: the active
//!   controller replicates every replay-log transition to a standby,
//!   which takes over on dead-peer detection and replays idempotently.
//!
//! A minimal controller against an in-process switch endpoint:
//!
//! ```
//! use openflow::{framed_link, Action, FlowMatch, OfpMessage, PortNo};
//!
//! // `framed_link` wires a controller Connection to a switch-side
//! // SwitchLink over an in-process byte stream.
//! let (conn, sw) = framed_link();
//!
//! // Play the switch's half of the handshake (normally ovs-dp does this).
//! let (msg, xid) = sw.try_recv().unwrap().unwrap();
//! assert_eq!(msg, OfpMessage::Hello);
//! sw.send(&OfpMessage::Hello, xid).unwrap();
//! let (_features_req, xid) = sw.try_recv().unwrap().unwrap();
//! sw.send(
//!     &OfpMessage::FeaturesReply { datapath_id: 0xd1, ports: vec![1, 2] },
//!     xid,
//! )
//! .unwrap();
//!
//! let features = conn.handshake(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(features.datapath_id, 0xd1);
//!
//! // Steer port 1 → port 2; the switch receives real encoded bytes.
//! conn.add_flow(
//!     FlowMatch::in_port(PortNo(1)),
//!     100,
//!     vec![Action::Output(PortNo(2))],
//!     0x77,
//! )
//! .unwrap();
//! let (msg, _xid) = sw.try_recv().unwrap().unwrap();
//! assert!(matches!(msg, OfpMessage::FlowMod(fm) if fm.cookie == 0x77));
//! ```

pub mod action;
pub mod app;
pub mod codec;
pub mod connection;
pub mod controller;
pub mod failover;
pub mod fmatch;
pub mod framer;
pub mod messages;
pub mod tcp;
pub mod transport;
pub mod types;
pub mod wire;

pub use action::Action;
pub use app::{ControllerApp, ControllerRuntime, FabricApp, FabricRuntime, LearningSwitch};
pub use connection::{Connection, ConnectionState, ReplayObserver, SwitchFeatures};
pub use controller::{framed_link, SwitchLink};
pub use failover::{ActivePeer, StandbyController};
pub use fmatch::FlowMatch;
pub use framer::Framer;
pub use messages::{
    AggregateStats, AggregateStatsRequest, DescStats, FlowMod, FlowModCommand, FlowRemoved,
    FlowStatsEntry, FlowStatsRequest, OfpMessage, PacketIn, PacketInReason, PacketOut, PortMod,
    PortStatsEntry, PortStatsRequest, PortStatus, PortStatusReason, TableStatsEntry,
};
pub use tcp::{loopback_listener, tcp_pair, TcpTransport};
pub use transport::{
    faulty_pair, loopback, FaultConfig, FaultControl, LoopbackEnd, ScriptedTransport, Transport,
};
pub use types::PortNo;
pub use wire::{OfpHeader, OfpMarshal, OFP_VERSION};

/// Errors produced by codec or transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfError {
    /// Buffer ended before the message did.
    Truncated,
    /// An inner length field disagrees with the payload.
    BadLength,
    /// The header's version byte is not OpenFlow 1.0.
    BadVersion(u8),
    /// A frame claims a length above the framer's configured maximum.
    Oversized { len: usize, max: usize },
    /// Unknown message type, action type or enum discriminant.
    Unknown(String),
    /// The peer hung up.
    Disconnected,
}

impl std::fmt::Display for OfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfError::Truncated => write!(f, "message truncated"),
            OfError::BadLength => write!(f, "inconsistent length field"),
            OfError::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            OfError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            OfError::Unknown(what) => write!(f, "unknown value: {what}"),
            OfError::Disconnected => write!(f, "control channel disconnected"),
        }
    }
}

impl std::error::Error for OfError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OfError>;
