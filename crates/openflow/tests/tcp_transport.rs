//! Framer behaviour over the *real* TCP transport: the loopback-socket
//! twin of `wire_fuzz.rs`. Same properties — arbitrary chunkings
//! reassemble, desync poisons permanently — but with the chunk
//! boundaries produced by actual nonblocking socket writes and
//! deliberately tiny reads, so partial I/O happens where the kernel
//! decides, not where a test harness does.

use openflow::codec::{decode, encode};
use openflow::messages::{OfpMessage, PacketIn, PacketInReason};
use openflow::{
    tcp_pair, Action, FlowMatch, FlowMod, Framer, OfError, PortNo, SwitchLink, Transport,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// A deterministic valid message picked by `seed` (mirrors `wire_fuzz`).
fn message(seed: u64) -> OfpMessage {
    match seed % 7 {
        0 => OfpMessage::Hello,
        1 => OfpMessage::EchoRequest((0..(seed % 16)).map(|b| b as u8).collect()),
        2 => OfpMessage::BarrierRequest,
        3 => OfpMessage::FeaturesRequest,
        4 => OfpMessage::FlowMod(
            FlowMod::add(
                FlowMatch::in_port(PortNo((seed % 64) as u16 + 1)),
                (seed % 500) as u16,
                vec![Action::Output(PortNo((seed % 48) as u16 + 1))],
            )
            .with_cookie(seed),
        ),
        5 => OfpMessage::PacketIn(PacketIn {
            in_port: PortNo((seed % 32) as u16 + 1),
            reason: PacketInReason::NoMatch,
            data: (0..(seed % 40)).map(|b| (b * 7) as u8).collect(),
        }),
        _ => OfpMessage::BarrierReply,
    }
}

/// Encodes `seeds` into one stream; returns the bytes, the per-frame
/// start offsets, and the expected `(message, xid)` sequence.
fn stream_of(seeds: &[u64]) -> (Vec<u8>, Vec<usize>, Vec<(OfpMessage, u32)>) {
    let mut bytes = Vec::new();
    let mut offsets = Vec::new();
    let mut expect = Vec::new();
    for (i, &s) in seeds.iter().enumerate() {
        let msg = message(s);
        let xid = 1000 + i as u32;
        offsets.push(bytes.len());
        bytes.extend_from_slice(&encode(&msg, xid));
        expect.push((msg, xid));
    }
    (bytes, offsets, expect)
}

/// Writes `bytes` through the transport in xorshift-sized chunks,
/// retrying on backpressure — every socket write boundary becomes a
/// potential partial frame on the reader side.
fn send_chunked(t: &dyn Transport, bytes: &[u8], mut rng: u64) {
    let mut pos = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while pos < bytes.len() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let take = (1 + (rng % 13) as usize).min(bytes.len() - pos);
        match t.send(&bytes[pos..pos + take]) {
            Ok(0) => std::thread::yield_now(), // kernel buffer full; retry
            Ok(n) => pos += n,
            Err(e) => panic!("send over healthy socket failed: {e:?}"),
        }
        assert!(Instant::now() < deadline, "send stalled");
    }
}

proptest! {
    // TCP pairs are heavier than in-memory buffers; fewer cases suffice
    // because the kernel adds its own boundary randomness per run.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any chunking of a valid stream, pushed through a real socket and
    /// drained with a deliberately tiny read buffer, reassembles to the
    /// identical message sequence.
    #[test]
    fn reassembles_across_real_socket_boundaries(
        seeds in proptest::collection::vec(0u64..10_000, 1..8),
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let (bytes, _, expect) = stream_of(&seeds);
        let (tx, rx) = tcp_pair().expect("loopback TCP pair");
        send_chunked(&tx, &bytes, chunk_seed | 1);

        let mut framer = Framer::new();
        let mut got = Vec::new();
        let mut chunk = [0u8; 5]; // tiny reads: frames always span reads
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < expect.len() {
            prop_assert!(Instant::now() < deadline, "stream never completed");
            match rx.recv(&mut chunk) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => framer.push(&chunk[..n]),
                Err(e) => prop_assert!(false, "recv failed mid-stream: {e:?}"),
            }
            while let Some(frame) = framer.poll_frame().expect("valid stream") {
                got.push(decode(&frame).expect("frame of a valid stream decodes"));
            }
        }
        prop_assert_eq!(framer.buffered(), 0);
        prop_assert_eq!(got, expect);
    }

    /// A corrupted version byte anywhere in the stream poisons the
    /// reader's framing permanently — even when the corruption arrives
    /// split across socket reads: frames before it decode, the desync
    /// error surfaces exactly once, and afterwards the link reports
    /// `Disconnected` forever (it must not spin or resync mid-garbage).
    #[test]
    fn desync_poisons_switch_link_over_tcp(
        seeds in proptest::collection::vec(0u64..10_000, 1..6),
        victim_seed in proptest::num::u64::ANY,
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let (mut bytes, offsets, expect) = stream_of(&seeds);
        let victim = (victim_seed % offsets.len() as u64) as usize;
        bytes[offsets[victim]] = 0x42; // not OpenFlow 1.0's version byte

        let (tx, rx) = tcp_pair().expect("loopback TCP pair");
        send_chunked(&tx, &bytes, chunk_seed | 1);

        let link = SwitchLink::new(Box::new(rx));
        let mut ok = Vec::new();
        let mut first_err = None;
        let deadline = Instant::now() + Duration::from_secs(10);
        while first_err.is_none() {
            prop_assert!(Instant::now() < deadline, "poison never surfaced");
            match link.try_recv() {
                None => std::thread::yield_now(),
                Some(Ok(pair)) => ok.push(pair),
                Some(Err(e)) => first_err = Some(e),
            }
        }
        // Everything before the victim frame was delivered intact.
        prop_assert_eq!(&ok, &expect[..victim]);
        prop_assert_eq!(first_err, Some(OfError::BadVersion(0x42)));
        // Poisoned means down for good, reported as a dead peer.
        for _ in 0..3 {
            prop_assert_eq!(link.try_recv(), Some(Err(OfError::Disconnected)));
        }
    }
}
