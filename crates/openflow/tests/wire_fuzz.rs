//! Property tests over the wire layer: the framer must reassemble valid
//! streams from arbitrary chunkings, and corrupted or truncated input must
//! produce errors — never a panic, never a mis-framed message.

use openflow::codec::{decode, encode};
use openflow::messages::{OfpMessage, PacketIn, PacketInReason};
use openflow::{Action, FlowMatch, FlowMod, Framer, PortNo};
use proptest::prelude::*;

/// A deterministic valid message picked by `seed`.
fn message(seed: u64) -> OfpMessage {
    match seed % 7 {
        0 => OfpMessage::Hello,
        1 => OfpMessage::EchoRequest((0..(seed % 16)).map(|b| b as u8).collect()),
        2 => OfpMessage::BarrierRequest,
        3 => OfpMessage::FeaturesRequest,
        4 => OfpMessage::FlowMod(
            FlowMod::add(
                FlowMatch::in_port(PortNo((seed % 64) as u16 + 1)),
                (seed % 500) as u16,
                vec![Action::Output(PortNo((seed % 48) as u16 + 1))],
            )
            .with_cookie(seed),
        ),
        5 => OfpMessage::PacketIn(PacketIn {
            in_port: PortNo((seed % 32) as u16 + 1),
            reason: PacketInReason::NoMatch,
            data: (0..(seed % 40)).map(|b| (b * 7) as u8).collect(),
        }),
        _ => OfpMessage::BarrierReply,
    }
}

/// Encodes `seeds` into one contiguous stream; returns the byte stream and
/// the expected `(message, xid)` sequence.
fn stream_of(seeds: &[u64]) -> (Vec<u8>, Vec<(OfpMessage, u32)>) {
    let mut bytes = Vec::new();
    let mut expect = Vec::new();
    for (i, &s) in seeds.iter().enumerate() {
        let msg = message(s);
        let xid = 1000 + i as u32;
        bytes.extend_from_slice(&encode(&msg, xid));
        expect.push((msg, xid));
    }
    (bytes, expect)
}

/// Drains every complete frame the framer will currently yield. Returns
/// frames until `Ok(None)` or an error; panicking here fails the property.
fn drain(framer: &mut Framer) -> (Vec<Vec<u8>>, Option<openflow::OfError>) {
    let mut frames = Vec::new();
    loop {
        match framer.poll_frame() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any chunking of a valid stream reassembles to the identical message
    /// sequence.
    #[test]
    fn reassembles_across_random_splits(
        seeds in proptest::collection::vec(0u64..10_000, 1..6),
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let (bytes, expect) = stream_of(&seeds);
        let mut framer = Framer::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut rng = chunk_seed | 1;
        while pos < bytes.len() {
            // Cheap xorshift for chunk sizes in 1..=13 bytes.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let take = (1 + (rng % 13) as usize).min(bytes.len() - pos);
            framer.push(&bytes[pos..pos + take]);
            pos += take;
            let (frames, err) = drain(&mut framer);
            prop_assert!(err.is_none(), "valid stream poisoned the framer: {err:?}");
            for f in frames {
                got.push(decode(&f).expect("frame of a valid stream must decode"));
            }
        }
        prop_assert_eq!(framer.buffered(), 0);
        prop_assert_eq!(got, expect);
    }

    /// Flipping any single byte never panics: each complete frame either
    /// decodes or errors, framing errors poison the stream permanently, and
    /// no yielded frame ever disagrees with its own header length.
    #[test]
    fn single_byte_mutations_never_panic_or_misframe(
        seeds in proptest::collection::vec(0u64..10_000, 1..5),
        pos_seed in proptest::num::u64::ANY,
        flip in 1u8..=255,
    ) {
        let (mut bytes, _) = stream_of(&seeds);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        let mut framer = Framer::new();
        framer.push(&bytes);
        let (frames, err) = drain(&mut framer);
        for f in &frames {
            // Framing invariant: the yielded slice is exactly as long as
            // its header claims, even for corrupt bodies.
            let hdr = openflow::OfpHeader::parse(f).expect("yielded frame has a header");
            prop_assert_eq!(hdr.length(), f.len());
            let _ = decode(f); // must not panic; Ok or Err both fine
        }
        if err.is_some() {
            prop_assert!(framer.is_poisoned());
            // Poisoned framers stay down: more input must change nothing.
            framer.push(&bytes);
            prop_assert!(framer.poll_frame().is_err());
        }
    }

    /// Truncating a valid stream yields only the frames wholly contained in
    /// the prefix; the tail stays buffered and is never emitted as a frame.
    #[test]
    fn truncation_withholds_partial_frames(
        seeds in proptest::collection::vec(0u64..10_000, 1..5),
        cut_seed in proptest::num::u64::ANY,
    ) {
        let (bytes, expect) = stream_of(&seeds);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let mut framer = Framer::new();
        framer.push(&bytes[..cut]);
        let (frames, err) = drain(&mut framer);
        prop_assert!(err.is_none(), "a prefix of a valid stream is valid");
        let consumed: usize = frames.iter().map(Vec::len).sum();
        prop_assert_eq!(consumed + framer.buffered(), cut);
        for (f, (want_msg, want_xid)) in frames.iter().zip(&expect) {
            let (msg, xid) = decode(f).expect("whole frames of a valid prefix decode");
            prop_assert_eq!(&msg, want_msg);
            prop_assert_eq!(xid, *want_xid);
        }
    }

    /// `decode` over arbitrary bytes returns `Err`, never panics.
    #[test]
    fn decode_survives_arbitrary_garbage(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
    ) {
        let _ = decode(&data); // Ok for accidental valid frames, Err otherwise
    }
}
