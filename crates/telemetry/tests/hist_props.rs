//! Property suite for `LatencyHistogram` (satellite of the telemetry PR):
//!
//! 1. every quantile estimate is within one bucket's relative error (1/8,
//!    from the 4 significant bits kept per bucket) of the exact quantile
//!    of the sorted samples;
//! 2. merging per-PMD histograms is *exact* — bucket-identical to having
//!    recorded every sample into one histogram;
//! 3. `record_n` is indistinguishable from `n` repeated `record`s.

use proptest::prelude::*;
use telemetry::LatencyHistogram;

/// Exact quantile of a sorted sample set, matching the histogram's
/// "smallest value with rank ≥ ceil(q·n)" convention.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q.clamp(0.0, 1.0)) * sorted.len() as f64).ceil() as usize;
    sorted[target.max(1) - 1]
}

/// Samples drawn across six decades so both the linear (< 16) and the
/// log-bucketed regions get exercised.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..1_000,
            1_000u64..1_000_000,
            1_000_000u64..10_000_000_000,
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_track_exact_within_one_bucket(samples in sample_strategy()) {
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            // The histogram reports a bucket upper bound clamped to the
            // observed max, so the estimate never undershoots the exact
            // sample and overshoots by at most one sub-bucket (1/8
            // relative; +1 absolute covers the small-value linear region).
            prop_assert!(
                est >= exact,
                "q={q}: estimate {est} under exact {exact} (n={})",
                sorted.len()
            );
            let bound = exact + exact / 8 + 1;
            prop_assert!(
                est <= bound,
                "q={q}: estimate {est} above bound {bound} (exact {exact}, n={})",
                sorted.len()
            );
        }
        prop_assert_eq!(h.count(), sorted.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_of_shards_equals_one_histogram(
        shard_a in sample_strategy(),
        shard_b in sample_strategy(),
        shard_c in sample_strategy(),
    ) {
        // Per-PMD recording then merge...
        let mut merged = LatencyHistogram::new();
        for shard in [&shard_a, &shard_b, &shard_c] {
            let mut h = LatencyHistogram::new();
            for &v in shard.iter() {
                h.record(v);
            }
            merged.merge(&h);
        }
        // ...versus recording the union into a single histogram.
        let mut single = LatencyHistogram::new();
        for &v in shard_a.iter().chain(&shard_b).chain(&shard_c) {
            single.record(v);
        }

        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.mean(), single.mean());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                merged.quantile(q),
                single.quantile(q),
                "merge must be exact at q={}",
                q
            );
        }
    }

    #[test]
    fn record_n_matches_repeated_record(
        values in proptest::collection::vec((0u64..10_000_000, 1u64..50), 1..40),
    ) {
        let mut batched = LatencyHistogram::new();
        let mut looped = LatencyHistogram::new();
        for &(v, n) in &values {
            batched.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        prop_assert_eq!(batched.count(), looped.count());
        prop_assert_eq!(batched.mean(), looped.mean());
        prop_assert_eq!(batched.min(), looped.min());
        prop_assert_eq!(batched.max(), looped.max());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(batched.quantile(q), looped.quantile(q));
        }
    }
}
