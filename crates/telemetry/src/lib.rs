//! Unified observability layer for the vnf-highway reproduction, modeled
//! on Open vSwitch's coverage and PMD-perf machinery.
//!
//! Four pieces, each usable on its own:
//!
//! - [`coverage`](mod@coverage) — named event counters bumpable from any
//!   crate via the [`coverage!`] macro, sharded per-thread so PMDs never
//!   contend,
//!   aggregated on read (`coverage/show`).
//! - [`PmdPerf`] — one per-PMD block of counters plus cycle-denominated
//!   [`LatencyHistogram`]s per pipeline [`Stage`] and cache [`Tier`],
//!   merged exactly across PMDs for whole-datapath views.
//! - [`TraceRing`] — 1-in-N sampled packet [`TraceSpan`]s with the full
//!   stage path, ring-buffered for `trace/show`-style dumps.
//! - [`pools`] — weak-registered mempool/arena rows (exhaustion, high
//!   water, foreign frees, slab writes), process-wide doorbell coalescing
//!   totals, and the `dpdk_sim::events` → coverage bridge.
//! - [`TelemetrySnapshot`] — the structured point-in-time view behind the
//!   [`appctl`] text renderings, the Prometheus exporter and the JSON
//!   consumed by benches and the CI smoke test (parseable with [`json`]).

pub mod appctl;
pub mod coverage;
pub mod hist;
pub mod json;
pub mod pmd_perf;
pub mod pools;
pub mod snapshot;
pub mod trace;

pub use hist::LatencyHistogram;
pub use pmd_perf::{PmdPerf, Stage, Tier};
pub use pools::{DoorbellTotals, PoolKind, PoolStats};
pub use snapshot::{DatapathTotals, HistSummary, TelemetrySnapshot};
pub use trace::{TraceRing, TraceSpan, DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_SAMPLE};
