//! A log-bucketed latency histogram (HdrHistogram-style, power-of-two
//! buckets with linear sub-buckets), good enough for p50/p99/p999 over
//! cycle-denominated latencies without allocation per sample.
//!
//! Buckets keep 4 significant bits, so every estimate is within one
//! sub-bucket — a relative error of at most 1/8 — of the exact sample
//! (pinned by the `hist_props` property suite).

/// Latency histogram over u64 cycle values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// 64 major buckets (by leading zeros) × 16 linear sub-buckets.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const SUB: usize = 16;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; 64 * SUB],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let shift = msb.saturating_sub(3); // keep 4 significant bits
        let major = msb - 3;
        let sub = ((value >> shift) & 0x7) as usize + 8;
        ((major * SUB) + sub).min(64 * SUB - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one bucket update — the burst path:
    /// a pipeline stage measured once for a burst of `n` packets attributes
    /// the cost to every packet without `n` separate record calls.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index(value)] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile (0.0–1.0) via bucket upper bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    fn bucket_upper(index: usize) -> u64 {
        let major = index / SUB;
        let sub = index % SUB;
        if major == 0 && sub < SUB {
            return sub as u64;
        }
        let msb = major + 3;
        let shift = msb.saturating_sub(3);
        let base = (sub as u64 & 0x7) << shift;
        let high = 1u64 << msb;
        high | base | ((1u64 << shift) - 1)
    }

    /// Merges another histogram into this one. Merging the per-PMD
    /// histograms of a sharded datapath is *exact*: the result is
    /// bucket-identical to having recorded every sample into one histogram
    /// (pinned by the `hist_props` property suite).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 3);
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100); // 100 .. 1_000_000
        }
        let p50 = h.quantile(0.5);
        assert!(
            (400_000..=600_000).contains(&p50),
            "p50 = {p50}, expected ≈ 500_000"
        );
        let p99 = h.quantile(0.99);
        assert!(
            (900_000..=1_050_000).contains(&p99),
            "p99 = {p99}, expected ≈ 990_000"
        );
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100u64 {
            a.record(10);
            b.record(1000 + i);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.quantile(0.25) <= 20);
        assert!(a.quantile(0.9) >= 900);
    }

    #[test]
    fn record_n_equals_n_records() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [7u64, 300, 65_536, 1_000_003] {
            a.record_n(v, 13);
            for _ in 0..13 {
                b.record(v);
            }
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }
}
