//! A minimal, dependency-free JSON parser.
//!
//! Exists so tests and benches can assert that
//! [`crate::snapshot::TelemetrySnapshot::to_json`] output actually parses
//! and carries the pinned invariants, without pulling serde into a
//! registry-less build. Supports the full JSON value grammar; numbers are
//! kept as `f64` with a lossless `u64` fast path for integer literals.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer literal that fits u64 (the common case for counters).
    UInt(u64),
    /// Any other number.
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as u64 when it is an integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as f64 when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected number at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x\ny"}],"c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn big_counters_stay_exact() {
        let v = parse(&format!("{{\"n\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = parse("[-3, 0.125, 1e3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(-3.0));
        assert_eq!(a[0].as_u64(), None);
        assert_eq!(a[1].as_f64(), Some(0.125));
        assert_eq!(a[2].as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }
}
