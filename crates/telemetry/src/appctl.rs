//! appctl-style text renderings of a [`TelemetrySnapshot`], modeled on
//! `ovs-appctl dpif-netdev/pmd-stats-show`, `pmd-perf-show` and
//! `coverage/show`, plus a Prometheus text-format exporter.
//!
//! The renderers take a snapshot (not live state) so every surface —
//! vswitchd appctl, HighwayNode appctl, benches — prints from the same
//! consistent copy.

use crate::pmd_perf::{PmdPerf, Stage, Tier};
use crate::snapshot::{HistSummary, TelemetrySnapshot};
use dpdk_sim::cycles;

/// `dpif-netdev/pmd-stats-show`: per-PMD counters, OVS-flavored.
pub fn pmd_stats_show(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for p in &snap.pmds {
        out.push_str(&format!("pmd thread numa_id 0 core_id {}:\n", p.pmd));
        out.push_str(&format!(
            "  packets received: {}\n",
            p.rx_packets + p.fanout_recv
        ));
        out.push_str(&format!("  packet recirculations: {}\n", p.fanout_recv));
        out.push_str(&format!("  emc hits: {}\n", p.emc_hits));
        out.push_str(&format!("  megaflow hits: {}\n", p.megaflow_hits));
        out.push_str(&format!("  classifier hits: {}\n", p.classifier_hits));
        out.push_str(&format!("  miss: {}\n", p.misses));
        out.push_str(&format!("  packets transmitted: {}\n", p.tx_packets));
        let per_pkt = p.busy_cycles.checked_div(p.lookups).unwrap_or(0);
        out.push_str(&format!(
            "  idle cycles: {} ({:.2}%)\n",
            p.idle_cycles,
            100.0 * (1.0 - p.useful_cycle_ratio()),
        ));
        out.push_str(&format!(
            "  processing cycles: {} ({:.2}%)\n",
            p.busy_cycles,
            100.0 * p.useful_cycle_ratio(),
        ));
        out.push_str(&format!("  avg processing cycles per packet: {per_pkt}\n"));
    }
    if snap.pmds.is_empty() {
        out.push_str("no pmd threads registered\n");
    }
    for p in &snap.pools {
        out.push_str(&format!("{} \"{}\":\n", p.kind.label(), p.name));
        out.push_str(&format!(
            "  capacity: {}  available: {}  in use: {}  high water: {}\n",
            p.capacity, p.available, p.in_use, p.high_water
        ));
        out.push_str(&format!(
            "  allocs: {}  alloc failures: {}  frees: {}  foreign frees: {}\n",
            p.allocs, p.alloc_failures, p.frees, p.foreign_frees
        ));
        if p.kind == crate::pools::PoolKind::Arena {
            out.push_str(&format!(
                "  credit returns: {}  credits reclaimed: {}  cow copies: {}  slab writes: {}\n",
                p.credit_returns, p.credits_reclaimed, p.cow_copies, p.slab_writes
            ));
        }
    }
    let d = &snap.doorbells;
    if d.rings + d.suppressed > 0 {
        out.push_str(&format!(
            "doorbells: rings: {}  suppressed: {}  pkts/ring: {:.1}\n",
            d.rings,
            d.suppressed,
            d.coalescing_ratio()
        ));
    }
    out
}

/// `dpif-netdev/pmd-perf-show`: per-PMD iteration stats plus the stage and
/// tier latency breakdown (p50/p99/p999 in cycles).
pub fn pmd_perf_show(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    if !snap.enabled {
        out.push_str("telemetry histograms disabled (counters only)\n");
    }
    for p in &snap.pmds {
        out.push_str(&format!("pmd thread core_id {}:\n", p.pmd));
        out.push_str(&format!(
            "  iterations: {} ({} idle, {:.2}% busy iterations)\n",
            p.iterations,
            p.idle_iterations,
            if p.iterations == 0 {
                0.0
            } else {
                100.0 * (p.iterations - p.idle_iterations) as f64 / p.iterations as f64
            },
        ));
        out.push_str(&format!(
            "  rx batches: {}  rx packets: {}  avg batch: {:.1}\n",
            p.rx_batches,
            p.rx_packets,
            if p.rx_batches == 0 {
                0.0
            } else {
                p.rx_packets as f64 / p.rx_batches as f64
            },
        ));
        out.push_str(&format!(
            "  fanout sent: {}  fanout recv: {}\n",
            p.fanout_sent, p.fanout_recv
        ));
        out.push_str(&render_hist_table(p));
    }
    if snap.pmds.is_empty() {
        out.push_str("no pmd threads registered\n");
    }
    out
}

fn render_hist_table(p: &PmdPerf) -> String {
    let mut out = String::new();
    out.push_str("  stage latencies (cycles/packet-burst):\n");
    out.push_str(&format!(
        "    {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
        "stage", "samples", "mean", "p50", "p99", "p999"
    ));
    for s in Stage::ALL {
        let h = HistSummary::of(p.stage(s));
        out.push_str(&format!(
            "    {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
            s.name(),
            h.count,
            h.mean,
            h.p50,
            h.p99,
            h.p999
        ));
    }
    out.push_str("  tier resolution cost (cycles/group):\n");
    for t in Tier::ALL {
        let h = HistSummary::of(p.tier(t));
        out.push_str(&format!(
            "    {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
            t.name(),
            h.count,
            h.mean,
            h.p50,
            h.p99,
            h.p999
        ));
    }
    out
}

/// `coverage/show`: nonzero coverage counters, sorted by name.
pub fn coverage_show(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("Event coverage, hash=counters:\n");
    let mut any = false;
    for (name, total) in &snap.coverage {
        if *total > 0 {
            out.push_str(&format!("{name:<28} total: {total}\n"));
            any = true;
        }
    }
    if !any {
        out.push_str("(no events)\n");
    }
    out
}

/// `histograms/show`: the cross-PMD stage/tier aggregate with wall-clock
/// translations of the cycle quantiles.
pub fn histograms_show(snap: &TelemetrySnapshot) -> String {
    let agg = snap.aggregate();
    let mut out = format!(
        "latency histograms, {} pmds merged (cycles @ {} Hz nominal):\n",
        snap.pmds.len(),
        cycles::CPU_HZ,
    );
    out.push_str(&format!(
        "  {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}  {:>12}\n",
        "stage", "samples", "mean", "p50", "p99", "p999", "p99 wallclk"
    ));
    for s in Stage::ALL {
        let h = HistSummary::of(agg.stage(s));
        out.push_str(&format!(
            "  {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}  {:>12}\n",
            s.name(),
            h.count,
            h.mean,
            h.p50,
            h.p99,
            h.p999,
            human_cycles(h.p99),
        ));
    }
    for t in Tier::ALL {
        let h = HistSummary::of(agg.tier(t));
        out.push_str(&format!(
            "  {:<10} {:>10} {:>8} {:>8} {:>8} {:>8}  {:>12}\n",
            t.name(),
            h.count,
            h.mean,
            h.p50,
            h.p99,
            h.p999,
            human_cycles(h.p99),
        ));
    }
    out
}

fn human_cycles(c: u64) -> String {
    let ns = cycles::to_duration(c).as_nanos();
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Prometheus text exposition of the snapshot (counters and summary
/// quantiles; `highway_` prefix throughout).
pub fn prometheus_text(snap: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let t = &snap.totals;
    out.push_str("# TYPE highway_datapath_lookups_total counter\n");
    out.push_str(&format!("highway_datapath_lookups_total {}\n", t.lookups));
    out.push_str("# TYPE highway_datapath_hits_total counter\n");
    for (tier, v) in [
        ("emc", t.emc_hits),
        ("megaflow", t.megaflow_hits),
        ("classifier", t.classifier_hits),
    ] {
        out.push_str(&format!(
            "highway_datapath_hits_total{{tier=\"{tier}\"}} {v}\n"
        ));
    }
    out.push_str("# TYPE highway_datapath_misses_total counter\n");
    out.push_str(&format!("highway_datapath_misses_total {}\n", t.misses));
    out.push_str("# TYPE highway_datapath_drops_total counter\n");
    for (reason, v) in [
        ("miss", t.miss_drops),
        ("tx_no_port", t.tx_no_port_drops),
        ("fanout", t.fanout_drops),
        ("packet_in", t.packet_in_drops),
    ] {
        out.push_str(&format!(
            "highway_datapath_drops_total{{reason=\"{reason}\"}} {v}\n"
        ));
    }

    out.push_str("# TYPE highway_pmd_rx_packets_total counter\n");
    out.push_str("# TYPE highway_pmd_tx_packets_total counter\n");
    out.push_str("# TYPE highway_pmd_busy_cycles_total counter\n");
    for p in &snap.pmds {
        out.push_str(&format!(
            "highway_pmd_rx_packets_total{{pmd=\"{}\"}} {}\n",
            p.pmd, p.rx_packets
        ));
        out.push_str(&format!(
            "highway_pmd_tx_packets_total{{pmd=\"{}\"}} {}\n",
            p.pmd, p.tx_packets
        ));
        out.push_str(&format!(
            "highway_pmd_busy_cycles_total{{pmd=\"{}\"}} {}\n",
            p.pmd, p.busy_cycles
        ));
    }

    let agg = snap.aggregate();
    out.push_str("# TYPE highway_stage_cycles summary\n");
    for s in Stage::ALL {
        let h = HistSummary::of(agg.stage(s));
        for (q, v) in [("0.5", h.p50), ("0.99", h.p99), ("0.999", h.p999)] {
            out.push_str(&format!(
                "highway_stage_cycles{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                s.name()
            ));
        }
        out.push_str(&format!(
            "highway_stage_cycles_count{{stage=\"{}\"}} {}\n",
            s.name(),
            h.count
        ));
    }

    out.push_str("# TYPE highway_coverage_total counter\n");
    for (name, v) in &snap.coverage {
        out.push_str(&format!("highway_coverage_total{{event=\"{name}\"}} {v}\n"));
    }

    if !snap.pools.is_empty() {
        out.push_str("# TYPE highway_pool_in_use gauge\n");
        out.push_str("# TYPE highway_pool_high_water gauge\n");
        out.push_str("# TYPE highway_pool_alloc_failures_total counter\n");
        out.push_str("# TYPE highway_pool_foreign_frees_total counter\n");
        out.push_str("# TYPE highway_pool_slab_writes_total counter\n");
        for p in &snap.pools {
            let labels = format!("pool=\"{}\",kind=\"{}\"", p.name, p.kind.label());
            out.push_str(&format!("highway_pool_in_use{{{labels}}} {}\n", p.in_use));
            out.push_str(&format!(
                "highway_pool_high_water{{{labels}}} {}\n",
                p.high_water
            ));
            out.push_str(&format!(
                "highway_pool_alloc_failures_total{{{labels}}} {}\n",
                p.alloc_failures
            ));
            out.push_str(&format!(
                "highway_pool_foreign_frees_total{{{labels}}} {}\n",
                p.foreign_frees
            ));
            out.push_str(&format!(
                "highway_pool_slab_writes_total{{{labels}}} {}\n",
                p.slab_writes
            ));
        }
    }
    let d = &snap.doorbells;
    out.push_str("# TYPE highway_doorbell_rings_total counter\n");
    out.push_str(&format!("highway_doorbell_rings_total {}\n", d.rings));
    out.push_str("# TYPE highway_doorbell_suppressed_total counter\n");
    out.push_str(&format!(
        "highway_doorbell_suppressed_total {}\n",
        d.suppressed
    ));
    out.push_str("# TYPE highway_doorbell_coalescing_ratio gauge\n");
    out.push_str(&format!(
        "highway_doorbell_coalescing_ratio {:.3}\n",
        d.coalescing_ratio()
    ));
    out
}

/// Dispatches an appctl-style command name to its renderer. Unknown
/// commands list what is available (like `ovs-appctl list-commands`).
pub fn dispatch(snap: &TelemetrySnapshot, command: &str) -> String {
    match command {
        "pmd-stats-show" | "dpif-netdev/pmd-stats-show" => pmd_stats_show(snap),
        "pmd-perf-show" | "dpif-netdev/pmd-perf-show" => pmd_perf_show(snap),
        "coverage/show" => coverage_show(snap),
        "histograms/show" => histograms_show(snap),
        "telemetry/json" => snap.to_json(),
        "telemetry/prometheus" => prometheus_text(snap),
        other => format!(
            "unknown command {other:?}; available: pmd-stats-show, pmd-perf-show, \
             coverage/show, histograms/show, telemetry/json, telemetry/prometheus\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::DatapathTotals;
    use std::collections::BTreeMap;

    fn snap() -> TelemetrySnapshot {
        let mut p = PmdPerf::new(1);
        p.record_lookup(Some(Tier::Emc), 64, 32);
        p.record_lookup(None, 1200, 1);
        p.record_stage(Stage::Classify, 64, 33);
        p.rx_packets = 33;
        p.tx_packets = 32;
        p.busy_cycles = 5000;
        p.idle_cycles = 5000;
        p.iterations = 10;
        let mut coverage = BTreeMap::new();
        coverage.insert("emc_insert", 3u64);
        coverage.insert("never", 0u64);
        TelemetrySnapshot {
            enabled: true,
            taken_at_cycles: 1,
            pmds: vec![p],
            totals: DatapathTotals {
                lookups: 33,
                emc_hits: 32,
                misses: 1,
                tx_no_port_drops: 2,
                ..Default::default()
            },
            coverage,
            traces_retained: 0,
            trace_groups_observed: 2,
            pools: vec![crate::pools::PoolStats {
                name: "hw-arena".into(),
                kind: crate::pools::PoolKind::Arena,
                capacity: 32,
                available: 30,
                in_use: 2,
                high_water: 7,
                allocs: 40,
                alloc_failures: 1,
                frees: 20,
                foreign_frees: 0,
                credit_returns: 18,
                credits_reclaimed: 16,
                cow_copies: 0,
                slab_writes: 41,
            }],
            doorbells: crate::pools::DoorbellTotals {
                rings: 3,
                notified_pkts: 96,
                suppressed: 93,
            },
        }
    }

    #[test]
    fn stats_show_has_ovs_vocabulary() {
        let s = pmd_stats_show(&snap());
        assert!(s.contains("pmd thread numa_id 0 core_id 1:"));
        assert!(s.contains("emc hits: 32"));
        assert!(s.contains("miss: 1"));
        assert!(s.contains("processing cycles: 5000 (50.00%)"));
    }

    #[test]
    fn stats_show_includes_pool_and_doorbell_sections() {
        let s = pmd_stats_show(&snap());
        assert!(s.contains("arena \"hw-arena\":"), "missing arena row:\n{s}");
        assert!(s.contains("high water: 7"));
        assert!(s.contains("foreign frees: 0"));
        assert!(s.contains("credit returns: 18"));
        assert!(s.contains("doorbells: rings: 3"));
        assert!(s.contains("pkts/ring: 32.0"));
    }

    #[test]
    fn perf_show_lists_every_stage() {
        let s = pmd_perf_show(&snap());
        for name in ["rx_burst", "fanout", "classify", "execute", "tx_flush"] {
            assert!(s.contains(name), "{name} missing from:\n{s}");
        }
        assert!(s.contains("iterations: 10"));
    }

    #[test]
    fn coverage_show_hides_zeroes() {
        let s = coverage_show(&snap());
        assert!(s.contains("emc_insert"));
        assert!(!s.contains("never"));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let s = prometheus_text(&snap());
        assert!(s.contains("highway_datapath_lookups_total 33"));
        assert!(s.contains("highway_datapath_hits_total{tier=\"emc\"} 32"));
        assert!(s.contains("highway_datapath_drops_total{reason=\"tx_no_port\"} 2"));
        assert!(s.contains("highway_stage_cycles{stage=\"classify\",quantile=\"0.99\"}"));
        assert!(s.contains("highway_coverage_total{event=\"emc_insert\"} 3"));
        assert!(s.contains("highway_pool_high_water{pool=\"hw-arena\",kind=\"arena\"} 7"));
        assert!(s.contains("highway_pool_alloc_failures_total{pool=\"hw-arena\",kind=\"arena\"} 1"));
        assert!(s.contains("highway_doorbell_rings_total 3"));
        assert!(s.contains("highway_doorbell_coalescing_ratio 32.000"));
        // Every non-comment line is "name{labels} value" or "name value".
        for line in s.lines().filter(|l| !l.starts_with('#')) {
            let parts: Vec<&str> = line.rsplitn(2, ' ').collect();
            assert_eq!(parts.len(), 2, "bad exposition line: {line}");
            assert!(parts[0].parse::<f64>().is_ok(), "bad value in: {line}");
        }
    }

    #[test]
    fn dispatch_routes_and_reports_unknowns() {
        let sn = snap();
        assert!(dispatch(&sn, "pmd-stats-show").contains("emc hits"));
        assert!(dispatch(&sn, "dpif-netdev/pmd-perf-show").contains("tier resolution"));
        assert!(dispatch(&sn, "histograms/show").contains("pmds merged"));
        assert!(dispatch(&sn, "telemetry/json").starts_with('{'));
        assert!(dispatch(&sn, "nope").contains("unknown command"));
    }
}
