//! Sampled packet trace spans.
//!
//! A [`TraceRing`] records the full stage path of 1-in-N classified packet
//! groups — which PMD handled them, which tier resolved them, and the
//! cycle cost of each stage — into a bounded ring. It exists to debug
//! cache pathologies ("why is this flow walking the classifier every
//! burst?") without per-packet logging: the sampling decision is one
//! relaxed fetch-add, and only sampled groups ever take the ring lock.

use dpdk_sim::cycles;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default sampling period: one traced group per this many *observed*
/// groups. The PMD only probes the sampler for groups in cycle-stamped
/// bursts (1-in-8), so the effective rate is ~1 traced group per
/// `8 * DEFAULT_TRACE_SAMPLE` classified groups.
pub const DEFAULT_TRACE_SAMPLE: u64 = 128;

/// Default ring capacity (spans retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// One sampled packet group's journey through the pipeline.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Cycle timestamp when the span began (group picked up for classify).
    pub start_cycles: u64,
    /// The PMD that classified the group.
    pub pmd: usize,
    /// Ingress OpenFlow port number.
    pub in_port: u16,
    /// Packets in the group (burst-batched classification shares one
    /// resolution across them).
    pub packets: u64,
    /// Debug rendering of the flow key.
    pub flow: String,
    /// The tier that resolved the group (`"miss"` when nothing matched).
    pub tier: &'static str,
    /// `(stage name, cycles spent)` in pipeline order.
    pub stages: Vec<(&'static str, u64)>,
}

impl TraceSpan {
    /// Total cycles across all recorded stages.
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|(_, c)| c).sum()
    }

    /// One-line rendering for `trace/show`.
    pub fn render(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(name, c)| format!("{name}={c}"))
            .collect();
        format!(
            "@{} pmd {} in_port {} pkts {} tier {} [{}] total {} cycles ({}) flow {}\n",
            self.start_cycles,
            self.pmd,
            self.in_port,
            self.packets,
            self.tier,
            stages.join(" "),
            self.total_cycles(),
            format_duration_cycles(self.total_cycles()),
            self.flow,
        )
    }
}

fn format_duration_cycles(c: u64) -> String {
    let ns = cycles::to_duration(c).as_nanos();
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A bounded ring of sampled [`TraceSpan`]s shared by every PMD.
pub struct TraceRing {
    every: u64,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceSpan>>,
    capacity: usize,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_SAMPLE, DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// A ring sampling one group in `every` (min 1), retaining `capacity`
    /// spans.
    pub fn new(every: u64, capacity: usize) -> TraceRing {
        TraceRing {
            every: every.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
        }
    }

    /// The sampling decision: true for exactly one call in `every`. The
    /// hot path pays one relaxed fetch-add.
    pub fn should_sample(&self) -> bool {
        self.seq.fetch_add(1, Ordering::Relaxed) % self.every == 0
    }

    /// Groups observed (sampled or not) since creation.
    pub fn observed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Stores a sampled span, evicting the oldest at capacity.
    pub fn push(&self, span: TraceSpan) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The most recent spans, oldest first, at most `max`.
    pub fn recent(&self, max: usize) -> Vec<TraceSpan> {
        let ring = self.ring.lock();
        ring.iter().rev().take(max).rev().cloned().collect()
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no span was sampled yet.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// `trace/show`-style rendering of the most recent `max` spans.
    pub fn render(&self, max: usize) -> String {
        let spans = self.recent(max);
        let mut out = format!(
            "packet traces: {} retained of {} groups observed (1-in-{} sampling)\n",
            spans.len(),
            self.observed(),
            self.every,
        );
        for span in &spans {
            out.push_str(&span.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pmd: usize) -> TraceSpan {
        TraceSpan {
            start_cycles: 1000,
            pmd,
            in_port: 1,
            packets: 4,
            flow: "udp 10.0.0.1:5->10.0.0.2:80".into(),
            tier: "emc",
            stages: vec![("classify", 120), ("execute", 80)],
        }
    }

    #[test]
    fn samples_one_in_n() {
        let ring = TraceRing::new(4, 16);
        let sampled = (0..16).filter(|_| ring.should_sample()).count();
        assert_eq!(sampled, 4);
        assert_eq!(ring.observed(), 16);
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let ring = TraceRing::new(1, 3);
        for i in 0..5 {
            ring.push(span(i));
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|s| s.pmd).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted, order preserved"
        );
    }

    #[test]
    fn render_contains_the_stage_path() {
        let s = span(2);
        assert_eq!(s.total_cycles(), 200);
        let r = s.render();
        assert!(r.contains("pmd 2"));
        assert!(r.contains("classify=120"));
        assert!(r.contains("tier emc"));
        let ring = TraceRing::new(1, 4);
        ring.push(s);
        assert!(ring.render(4).contains("1-in-1 sampling"));
    }
}
