//! Buffer-pool and doorbell telemetry.
//!
//! Mempools and arenas register weakly here ([`register_mempool`] /
//! [`register_arena`]); [`snapshot_pools`] walks the registry, prunes dead
//! pools, and returns one [`PoolStats`] row per live pool — the data behind
//! the `pmd-stats-show` arena section and the `highway_pool_*` Prometheus
//! series. Doorbells (batched ring notifications in `shmem`) report their
//! ring/suppress counts into process-wide totals ([`note_doorbell_ring`] /
//! [`note_doorbell_suppressed`]), from which the coalescing ratio —
//! packets-per-notification — is derived.
//!
//! [`install_event_bridge`] closes the layering gap downward: `dpdk-sim`
//! sits below this crate, so its exceptional-path events (alloc failures,
//! foreign frees, COW detaches) are emitted through `dpdk_sim::events` and
//! forwarded here into [`crate::coverage`](mod@crate::coverage) counters.

use dpdk_sim::{Arena, Mempool, WeakArena, WeakMempool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What kind of pool a [`PoolStats`] row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Heap-buffer mempool (`dpdk_sim::Mempool`).
    Mempool,
    /// Shared-arena segment (`dpdk_sim::Arena`).
    Arena,
}

impl PoolKind {
    /// Lower-case label used in appctl/Prometheus output.
    pub fn label(self) -> &'static str {
        match self {
            PoolKind::Mempool => "mempool",
            PoolKind::Arena => "arena",
        }
    }
}

/// Point-in-time counters of one registered pool.
#[derive(Debug, Clone)]
pub struct PoolStats {
    pub name: String,
    pub kind: PoolKind,
    pub capacity: usize,
    /// Buffers immediately allocatable (arena: freelist only, excludes
    /// unreclaimed credits).
    pub available: usize,
    pub in_use: usize,
    /// Highest `in_use` ever observed (mempools derive it as capacity
    /// minus the observed minimum, so it is 0 until first exhaustion-free
    /// snapshot support lands; arenas track it exactly).
    pub high_water: usize,
    pub allocs: u64,
    pub alloc_failures: u64,
    pub frees: u64,
    pub foreign_frees: u64,
    /// Arena-only: frees routed through the credit-return ring.
    pub credit_returns: u64,
    /// Arena-only: credits the owner folded back into the freelist.
    pub credits_reclaimed: u64,
    /// Arena-only: copy-on-write slot copies.
    pub cow_copies: u64,
    /// Arena-only: mutable-byte accesses to the slab.
    pub slab_writes: u64,
}

enum PoolSource {
    Mempool(WeakMempool),
    Arena(WeakArena),
}

fn registry() -> &'static Mutex<Vec<PoolSource>> {
    static REG: OnceLock<Mutex<Vec<PoolSource>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a mempool for inclusion in [`snapshot_pools`]. The registry
/// holds only a weak reference; dropped pools are pruned on snapshot.
pub fn register_mempool(pool: &Mempool) {
    registry().lock().push(PoolSource::Mempool(pool.weak()));
}

/// Registers an arena for inclusion in [`snapshot_pools`].
pub fn register_arena(arena: &Arena) {
    registry().lock().push(PoolSource::Arena(arena.weak()));
}

/// Snapshots every live registered pool, pruning dead entries.
pub fn snapshot_pools() -> Vec<PoolStats> {
    let mut reg = registry().lock();
    let mut out = Vec::with_capacity(reg.len());
    reg.retain(|src| match src {
        PoolSource::Mempool(w) => match w.upgrade() {
            Some(pool) => {
                let s = pool.stats();
                out.push(PoolStats {
                    name: pool.name().to_string(),
                    kind: PoolKind::Mempool,
                    capacity: pool.capacity(),
                    available: pool.available(),
                    in_use: pool.in_use(),
                    high_water: 0,
                    allocs: s.allocs,
                    alloc_failures: s.alloc_failures,
                    frees: s.frees,
                    foreign_frees: s.foreign_frees,
                    credit_returns: 0,
                    credits_reclaimed: 0,
                    cow_copies: 0,
                    slab_writes: 0,
                });
                true
            }
            None => false,
        },
        PoolSource::Arena(w) => match w.upgrade() {
            Some(arena) => {
                let s = arena.stats();
                out.push(PoolStats {
                    name: arena.name().to_string(),
                    kind: PoolKind::Arena,
                    capacity: s.capacity,
                    available: s.available,
                    in_use: s.in_use,
                    high_water: s.high_water,
                    allocs: s.allocs,
                    alloc_failures: s.alloc_failures,
                    frees: s.frees,
                    foreign_frees: s.foreign_frees,
                    credit_returns: s.credit_returns,
                    credits_reclaimed: s.credits_reclaimed,
                    cow_copies: s.cow_copies,
                    slab_writes: s.slab_writes,
                });
                true
            }
            None => false,
        },
    });
    out
}

// ---- doorbell totals -------------------------------------------------------

static DOORBELL_RINGS: AtomicU64 = AtomicU64::new(0);
static DOORBELL_NOTIFIED_PKTS: AtomicU64 = AtomicU64::new(0);
static DOORBELL_SUPPRESSED: AtomicU64 = AtomicU64::new(0);

/// Process-wide doorbell counters (all channels merged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoorbellTotals {
    /// Actual notifications delivered.
    pub rings: u64,
    /// Packets covered by those notifications.
    pub notified_pkts: u64,
    /// Per-packet notifications elided by batching.
    pub suppressed: u64,
}

impl DoorbellTotals {
    /// Packets per delivered notification (the batching win); 0 when no
    /// doorbell has rung yet.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.rings == 0 {
            0.0
        } else {
            self.notified_pkts as f64 / self.rings as f64
        }
    }
}

/// Records one delivered doorbell covering `pkts` packets.
pub fn note_doorbell_ring(pkts: u64) {
    DOORBELL_RINGS.fetch_add(1, Ordering::Relaxed);
    DOORBELL_NOTIFIED_PKTS.fetch_add(pkts, Ordering::Relaxed);
}

/// Records `n` per-packet notifications elided by batching.
pub fn note_doorbell_suppressed(n: u64) {
    DOORBELL_SUPPRESSED.fetch_add(n, Ordering::Relaxed);
}

/// Current process-wide doorbell totals.
pub fn doorbell_totals() -> DoorbellTotals {
    DoorbellTotals {
        rings: DOORBELL_RINGS.load(Ordering::Relaxed),
        notified_pkts: DOORBELL_NOTIFIED_PKTS.load(Ordering::Relaxed),
        suppressed: DOORBELL_SUPPRESSED.load(Ordering::Relaxed),
    }
}

// ---- dpdk event bridge -----------------------------------------------------

fn event_bridge(name: &'static str, n: u64) {
    crate::coverage::add(name, n);
}

/// Installs the `dpdk_sim::events` → [`crate::coverage`](mod@crate::coverage)
/// bridge, so
/// exceptional pool events ("mempool_foreign_free", "arena_alloc_failure",
/// "arena_cow_detach", ...) show up as coverage counters. Idempotent —
/// the hook is first-set-wins and this always offers the same function.
pub fn install_event_bridge() {
    dpdk_sim::events::set_event_hook(event_bridge);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshots_live_pools_and_prunes_dead() {
        let pool = Mempool::new("pool-snap-live", 4, 256);
        let arena = Arena::new("arena-snap-live", 8, 512);
        register_mempool(&pool);
        register_arena(&arena);
        let _held = arena.alloc().unwrap();

        let rows = snapshot_pools();
        let p = rows.iter().find(|r| r.name == "pool-snap-live").unwrap();
        assert_eq!((p.kind, p.capacity, p.in_use), (PoolKind::Mempool, 4, 0));
        let a = rows.iter().find(|r| r.name == "arena-snap-live").unwrap();
        assert_eq!((a.kind, a.capacity, a.in_use), (PoolKind::Arena, 8, 1));
        assert_eq!(a.high_water, 1);

        drop((pool, arena, _held));
        let rows = snapshot_pools();
        assert!(rows.iter().all(|r| r.name != "pool-snap-live"));
        assert!(rows.iter().all(|r| r.name != "arena-snap-live"));
    }

    #[test]
    fn doorbell_totals_accumulate_and_derive_ratio() {
        let before = doorbell_totals();
        note_doorbell_ring(32);
        note_doorbell_ring(16);
        note_doorbell_suppressed(46);
        let after = doorbell_totals();
        assert_eq!(after.rings, before.rings + 2);
        assert_eq!(after.notified_pkts, before.notified_pkts + 48);
        assert_eq!(after.suppressed, before.suppressed + 46);
        assert!(after.coalescing_ratio() > 0.0);
    }

    #[test]
    fn event_bridge_forwards_dpdk_events_to_coverage() {
        install_event_bridge();
        let before = crate::coverage::total("arena_alloc_failure");
        // Exhaust a 1-slot arena: the failure emits through the hook.
        let arena = Arena::new("bridge-test", 1, 64);
        let _held = arena.alloc().unwrap();
        assert!(arena.alloc().is_none());
        assert_eq!(crate::coverage::total("arena_alloc_failure"), before + 1);
    }
}
