//! Coverage counters, modeled on OVS's `COVERAGE_DEFINE`/`coverage/show`
//! machinery: named event counters any crate can bump from any thread with
//! no cross-thread contention on the hot path.
//!
//! Design: each `(thread, name)` pair owns a private `AtomicU64` cell. The
//! incrementing thread finds its cell through a thread-local map (no lock,
//! no atomic RMW shared with any other thread), so two PMDs bumping
//! `coverage!("emc_hit")` never touch the same cache line. A process-wide
//! registry keeps one `Arc` per cell; [`snapshot`] aggregates by summing
//! the cells of every thread that ever bumped a name — including threads
//! that have since exited (totals are cumulative, exactly like OVS).

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

type CellHandle = Arc<AtomicU64>;

/// The process-wide cell registry: every `(thread, name)` cell ever created.
fn registry() -> &'static Mutex<Vec<(&'static str, CellHandle)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, CellHandle)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's name → private cell map (the lock-free fast path).
    static LOCAL: RefCell<HashMap<&'static str, CellHandle>> = RefCell::new(HashMap::new());
}

/// Adds `n` to the named coverage counter. Prefer the
/// [`coverage!`](macro@crate::coverage) macro.
///
/// The fast path (cell already created by this thread) is one thread-local
/// hash probe plus a relaxed add on a cell no other thread writes; the slow
/// path (first bump of `name` on this thread) registers a fresh cell.
pub fn add(name: &'static str, n: u64) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let cell = local.entry(name).or_insert_with(|| {
            let cell: CellHandle = Arc::new(AtomicU64::new(0));
            registry().lock().push((name, Arc::clone(&cell)));
            cell
        });
        cell.fetch_add(n, Ordering::Relaxed);
    });
}

/// Point-in-time totals of every coverage counter, summed across threads,
/// sorted by name. Names bumped zero times (never registered) are absent.
pub fn snapshot() -> BTreeMap<&'static str, u64> {
    let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (name, cell) in registry().lock().iter() {
        *out.entry(name).or_insert(0) += cell.load(Ordering::Relaxed);
    }
    out
}

/// Current total of one counter (0 when never bumped).
pub fn total(name: &str) -> u64 {
    registry()
        .lock()
        .iter()
        .filter(|(n, _)| *n == name)
        .map(|(_, c)| c.load(Ordering::Relaxed))
        .sum()
}

/// Bumps a named coverage counter by 1 (or by an explicit amount):
/// `coverage!("emc_hit")`, `coverage!("fanout_pkts", n)`. The name must be
/// a string literal (a `&'static str`); counters need no prior declaration.
#[macro_export]
macro_rules! coverage {
    ($name:literal) => {
        $crate::coverage::add($name, 1)
    };
    ($name:literal, $n:expr) => {
        $crate::coverage::add($name, $n)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total_roundtrip() {
        // Names unique to this test: coverage state is process-global and
        // other tests in the binary run concurrently.
        add("cov_test_alpha", 1);
        add("cov_test_alpha", 2);
        assert_eq!(total("cov_test_alpha"), 3);
        assert_eq!(snapshot().get("cov_test_alpha"), Some(&3));
        assert_eq!(total("cov_test_never_bumped"), 0);
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        crate::coverage!("cov_test_cross_thread");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Cells of exited threads keep contributing to the total.
        assert_eq!(total("cov_test_cross_thread"), 4000);
    }

    #[test]
    fn macro_forms() {
        crate::coverage!("cov_test_macro");
        crate::coverage!("cov_test_macro", 9);
        assert_eq!(total("cov_test_macro"), 10);
    }
}
