//! Per-PMD performance blocks, modeled on OVS's `pmd-perf` machinery.
//!
//! Each PMD thread owns one [`PmdPerf`]: plain counters plus one
//! cycle-denominated [`LatencyHistogram`] per pipeline stage and per cache
//! tier. The block lives inside the PMD's own per-thread state (in the
//! reproduction: inside `PmdCaches`, behind the PMD's uncontended mutex),
//! so the hot path never shares a cache line with another PMD; operator
//! reads clone the block into a [`crate::snapshot::TelemetrySnapshot`].
//!
//! The stage decomposition mirrors Sattar & Matrawy's empirical OVS delay
//! model (rx → classification tier → actions → tx), extended with the
//! fan-out reshard stage the sharded datapath adds.

use crate::hist::LatencyHistogram;

/// Pipeline stages of one PMD iteration, in packet order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Polling a port's rx ring into a burst.
    RxBurst,
    /// RSS partition + SPSC enqueue toward owner PMDs.
    Fanout,
    /// Flow-key group resolution through EMC/megaflow/classifier.
    Classify,
    /// Action execution + output staging (including miss handling).
    Execute,
    /// Flushing staged packets to their destination ports.
    TxFlush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::RxBurst,
        Stage::Fanout,
        Stage::Classify,
        Stage::Execute,
        Stage::TxFlush,
    ];

    /// Stable lowercase name used in snapshots, appctl output and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Stage::RxBurst => "rx_burst",
            Stage::Fanout => "fanout",
            Stage::Classify => "classify",
            Stage::Execute => "execute",
            Stage::TxFlush => "tx_flush",
        }
    }
}

/// The cache tier that resolved a lookup group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Emc,
    Megaflow,
    Classifier,
}

impl Tier {
    /// Every tier, cheapest first.
    pub const ALL: [Tier; 3] = [Tier::Emc, Tier::Megaflow, Tier::Classifier];

    /// Stable lowercase name used in snapshots, appctl output and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Emc => "emc",
            Tier::Megaflow => "megaflow",
            Tier::Classifier => "classifier",
        }
    }
}

/// One PMD's counters and histograms. All plain fields: the owning thread
/// mutates them behind its own (uncontended) lock; readers clone.
#[derive(Debug, Clone)]
pub struct PmdPerf {
    /// Index of the owning PMD thread.
    pub pmd: usize,
    /// Poll-loop iterations (idle or not).
    pub iterations: u64,
    /// Iterations that moved no packet at all.
    pub idle_iterations: u64,
    /// Packets polled off this PMD's own ports (pre-reshard).
    pub rx_packets: u64,
    /// Non-empty rx bursts polled.
    pub rx_batches: u64,
    /// Packets this PMD handed to a peer over the fan-out mesh.
    pub fanout_sent: u64,
    /// Packets this PMD received from peers over the fan-out mesh.
    pub fanout_recv: u64,
    /// Packets flushed to destination ports by this PMD.
    pub tx_packets: u64,
    /// Lookups performed by this PMD (every processed packet is one).
    pub lookups: u64,
    /// Lookups resolved by the EMC.
    pub emc_hits: u64,
    /// Lookups resolved by the megaflow cache.
    pub megaflow_hits: u64,
    /// Lookups resolved by a full classifier walk.
    pub classifier_hits: u64,
    /// Lookups that matched no rule.
    pub misses: u64,
    /// Cycles spent in iterations that moved at least one packet.
    pub busy_cycles: u64,
    /// Cycles spent in iterations that moved nothing.
    pub idle_cycles: u64,
    /// Per-stage cycle histograms; counts are in *packets* (a stage
    /// measured once for an n-packet burst records n samples of the same
    /// burst-level cost via [`LatencyHistogram::record_n`]).
    stage_hist: [LatencyHistogram; Stage::ALL.len()],
    /// Per-tier resolution-cost histograms; counts are in *sampled
    /// resolutions* — one per flow-key group (the unit burst-batched
    /// classification actually pays for) in the bursts the caller
    /// cycle-stamped. Callers that sample stamping (the PMD stamps 1-in-N
    /// bursts) populate these sparsely while keeping the counter fields
    /// exact via [`count_lookup`](Self::count_lookup).
    tier_hist: [LatencyHistogram; Tier::ALL.len()],
}

impl Default for PmdPerf {
    fn default() -> Self {
        Self::new(0)
    }
}

impl PmdPerf {
    /// An empty block for PMD `pmd`.
    pub fn new(pmd: usize) -> PmdPerf {
        PmdPerf {
            pmd,
            iterations: 0,
            idle_iterations: 0,
            rx_packets: 0,
            rx_batches: 0,
            fanout_sent: 0,
            fanout_recv: 0,
            tx_packets: 0,
            lookups: 0,
            emc_hits: 0,
            megaflow_hits: 0,
            classifier_hits: 0,
            misses: 0,
            busy_cycles: 0,
            idle_cycles: 0,
            stage_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            tier_hist: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    fn stage_slot(stage: Stage) -> usize {
        Stage::ALL.iter().position(|s| *s == stage).expect("stage")
    }

    fn tier_slot(tier: Tier) -> usize {
        Tier::ALL.iter().position(|t| *t == tier).expect("tier")
    }

    /// Records `cycles` spent in `stage` on behalf of `packets` packets.
    pub fn record_stage(&mut self, stage: Stage, cycles: u64, packets: u64) {
        self.stage_hist[Self::stage_slot(stage)].record_n(cycles, packets);
    }

    /// Records one group resolution of `cycles` attributed to `tier`, and
    /// the per-PMD lookup counters for the `packets` the group stood for.
    /// `tier` is `None` on a miss.
    pub fn record_lookup(&mut self, tier: Option<Tier>, cycles: u64, packets: u64) {
        self.count_lookup(tier, packets);
        match tier {
            Some(t) => self.tier_hist[Self::tier_slot(t)].record(cycles),
            // A miss walked the whole hierarchy: classifier-tier cost.
            None => self.tier_hist[Self::tier_slot(Tier::Classifier)].record(cycles),
        }
    }

    /// The counter half of [`record_lookup`](Self::record_lookup), for
    /// deployments running with histograms disabled: lookup attribution
    /// stays exact while no cycle is ever read.
    pub fn count_lookup(&mut self, tier: Option<Tier>, packets: u64) {
        self.lookups += packets;
        match tier {
            Some(Tier::Emc) => self.emc_hits += packets,
            Some(Tier::Megaflow) => self.megaflow_hits += packets,
            Some(Tier::Classifier) => self.classifier_hits += packets,
            None => self.misses += packets,
        }
    }

    /// The histogram of one pipeline stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stage_hist[Self::stage_slot(stage)]
    }

    /// The resolution-cost histogram of one cache tier.
    pub fn tier(&self, tier: Tier) -> &LatencyHistogram {
        &self.tier_hist[Self::tier_slot(tier)]
    }

    /// Lookups that hit any tier.
    pub fn matched(&self) -> u64 {
        self.emc_hits + self.megaflow_hits + self.classifier_hits
    }

    /// Fraction of attributed cycles spent busy (0.0 when nothing ran).
    pub fn useful_cycle_ratio(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Folds another PMD's block into this one (histograms merge exactly;
    /// `pmd` keeps this block's index). Used for "all PMDs" aggregates.
    pub fn merge(&mut self, other: &PmdPerf) {
        self.iterations += other.iterations;
        self.idle_iterations += other.idle_iterations;
        self.rx_packets += other.rx_packets;
        self.rx_batches += other.rx_batches;
        self.fanout_sent += other.fanout_sent;
        self.fanout_recv += other.fanout_recv;
        self.tx_packets += other.tx_packets;
        self.lookups += other.lookups;
        self.emc_hits += other.emc_hits;
        self.megaflow_hits += other.megaflow_hits;
        self.classifier_hits += other.classifier_hits;
        self.misses += other.misses;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        for (a, b) in self.stage_hist.iter_mut().zip(&other.stage_hist) {
            a.merge(b);
        }
        for (a, b) in self.tier_hist.iter_mut().zip(&other.tier_hist) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_attribution_keeps_the_identities() {
        let mut p = PmdPerf::new(3);
        p.record_lookup(Some(Tier::Emc), 50, 10);
        p.record_lookup(Some(Tier::Megaflow), 200, 4);
        p.record_lookup(Some(Tier::Classifier), 900, 2);
        p.record_lookup(None, 950, 1);
        assert_eq!(p.lookups, 17);
        assert_eq!(p.matched(), 16);
        assert_eq!(p.misses, 1);
        assert_eq!(p.lookups, p.matched() + p.misses);
        // One resolution per group, whatever the group size.
        assert_eq!(p.tier(Tier::Emc).count(), 1);
        assert_eq!(p.tier(Tier::Megaflow).count(), 1);
        assert_eq!(p.tier(Tier::Classifier).count(), 2, "miss counts here");
    }

    #[test]
    fn stage_counts_are_in_packets() {
        let mut p = PmdPerf::new(0);
        p.record_stage(Stage::Classify, 640, 32);
        p.record_stage(Stage::Classify, 100, 1);
        assert_eq!(p.stage(Stage::Classify).count(), 33);
        assert_eq!(p.stage(Stage::TxFlush).count(), 0);
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = PmdPerf::new(0);
        let mut b = PmdPerf::new(1);
        a.record_lookup(Some(Tier::Emc), 10, 5);
        b.record_lookup(None, 700, 3);
        a.record_stage(Stage::RxBurst, 120, 5);
        b.record_stage(Stage::RxBurst, 90, 3);
        a.busy_cycles = 300;
        b.idle_cycles = 100;
        a.merge(&b);
        assert_eq!(a.pmd, 0);
        assert_eq!(a.lookups, 8);
        assert_eq!(a.misses, 3);
        assert_eq!(a.stage(Stage::RxBurst).count(), 8);
        assert!((a.useful_cycle_ratio() - 0.75).abs() < 1e-9);
    }
}
