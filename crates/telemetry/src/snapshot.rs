//! Structured telemetry snapshots.
//!
//! [`TelemetrySnapshot`] is the single structured view of everything the
//! telemetry layer knows — per-PMD perf blocks, datapath-wide totals,
//! coverage counters and trace-ring occupancy — consumed by the appctl
//! renderers, the Prometheus exporter, the benches (`BENCH_*.json`
//! embedding) and the CI smoke test. [`TelemetrySnapshot::to_json`] emits
//! dependency-free JSON that [`crate::json::parse`] round-trips.

use crate::hist::LatencyHistogram;
use crate::pmd_perf::{PmdPerf, Stage, Tier};
use crate::pools::{DoorbellTotals, PoolStats};
use std::collections::BTreeMap;

/// Percentile summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub mean: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistSummary {
    /// Summarizes a histogram (all-zero when empty).
    pub fn of(h: &LatencyHistogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
            self.count, self.mean, self.min, self.max, self.p50, self.p99, self.p999
        )
    }
}

/// Datapath-wide counter totals (the shared atomics, not per-PMD).
#[derive(Debug, Clone, Copy, Default)]
pub struct DatapathTotals {
    pub lookups: u64,
    pub matched: u64,
    pub emc_hits: u64,
    pub megaflow_hits: u64,
    pub classifier_hits: u64,
    pub misses: u64,
    pub miss_drops: u64,
    pub tx_no_port_drops: u64,
    pub fanout_drops: u64,
    pub packet_in_drops: u64,
}

/// A point-in-time copy of the whole telemetry registry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Whether cycle stamping was enabled when the snapshot was taken
    /// (counters tick regardless; histograms stay empty when disabled).
    pub enabled: bool,
    /// Cycle timestamp of the snapshot.
    pub taken_at_cycles: u64,
    /// One perf block per registered PMD, in registration order.
    pub pmds: Vec<PmdPerf>,
    /// Datapath-wide totals.
    pub totals: DatapathTotals,
    /// Coverage counter totals at snapshot time.
    pub coverage: BTreeMap<&'static str, u64>,
    /// Sampled trace spans retained in the ring at snapshot time.
    pub traces_retained: usize,
    /// Groups observed by the trace sampler (sampled or not).
    pub trace_groups_observed: u64,
    /// One row per registered mempool/arena (see [`crate::pools`]).
    pub pools: Vec<PoolStats>,
    /// Process-wide doorbell coalescing totals.
    pub doorbells: DoorbellTotals,
}

impl TelemetrySnapshot {
    /// All PMD blocks folded into one (histograms merge exactly).
    pub fn aggregate(&self) -> PmdPerf {
        let mut agg = PmdPerf::new(0);
        for pmd in &self.pmds {
            agg.merge(pmd);
        }
        agg
    }

    /// Stage summary of the cross-PMD aggregate.
    pub fn stage_summary(&self, stage: Stage) -> HistSummary {
        HistSummary::of(self.aggregate().stage(stage))
    }

    /// Tier summary of the cross-PMD aggregate.
    pub fn tier_summary(&self, tier: Tier) -> HistSummary {
        HistSummary::of(self.aggregate().tier(tier))
    }

    /// Renders the snapshot as a JSON object (no external dependencies;
    /// [`crate::json::parse`] accepts the output).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str(&format!("\"enabled\":{},", self.enabled));
        out.push_str(&format!("\"taken_at_cycles\":{},", self.taken_at_cycles));

        let t = &self.totals;
        out.push_str(&format!(
            "\"totals\":{{\"lookups\":{},\"matched\":{},\"emc_hits\":{},\"megaflow_hits\":{},\
             \"classifier_hits\":{},\"misses\":{},\"miss_drops\":{},\"tx_no_port_drops\":{},\
             \"fanout_drops\":{},\"packet_in_drops\":{}}},",
            t.lookups,
            t.matched,
            t.emc_hits,
            t.megaflow_hits,
            t.classifier_hits,
            t.misses,
            t.miss_drops,
            t.tx_no_port_drops,
            t.fanout_drops,
            t.packet_in_drops,
        ));

        out.push_str("\"pmds\":[");
        for (i, p) in self.pmds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&pmd_json(p));
        }
        out.push_str("],");

        let agg = self.aggregate();
        out.push_str("\"stage_totals\":");
        out.push_str(&hist_map_json(
            Stage::ALL
                .iter()
                .map(|s| (s.name(), HistSummary::of(agg.stage(*s)))),
        ));
        out.push(',');
        out.push_str("\"tier_totals\":");
        out.push_str(&hist_map_json(
            Tier::ALL
                .iter()
                .map(|t| (t.name(), HistSummary::of(agg.tier(*t)))),
        ));
        out.push(',');

        out.push_str("\"coverage\":{");
        for (i, (name, v)) in self.coverage.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},");

        out.push_str("\"pools\":[");
        for (i, p) in self.pools.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"capacity\":{},\"available\":{},\
                 \"in_use\":{},\"high_water\":{},\"allocs\":{},\"alloc_failures\":{},\
                 \"frees\":{},\"foreign_frees\":{},\"credit_returns\":{},\
                 \"credits_reclaimed\":{},\"cow_copies\":{},\"slab_writes\":{}}}",
                p.name,
                p.kind.label(),
                p.capacity,
                p.available,
                p.in_use,
                p.high_water,
                p.allocs,
                p.alloc_failures,
                p.frees,
                p.foreign_frees,
                p.credit_returns,
                p.credits_reclaimed,
                p.cow_copies,
                p.slab_writes,
            ));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"doorbells\":{{\"rings\":{},\"notified_pkts\":{},\"suppressed\":{},\
             \"coalescing_ratio\":{:.3}}},",
            self.doorbells.rings,
            self.doorbells.notified_pkts,
            self.doorbells.suppressed,
            self.doorbells.coalescing_ratio(),
        ));
        out.push_str(&format!(
            "\"traces\":{{\"retained\":{},\"groups_observed\":{}}}",
            self.traces_retained, self.trace_groups_observed
        ));
        out.push('}');
        out
    }
}

fn hist_map_json<'a>(entries: impl Iterator<Item = (&'a str, HistSummary)>) -> String {
    let mut out = String::from("{");
    for (i, (name, s)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{}", s.to_json()));
    }
    out.push('}');
    out
}

fn pmd_json(p: &PmdPerf) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"pmd\":{},\"iterations\":{},\"idle_iterations\":{},\"rx_packets\":{},\
         \"rx_batches\":{},\"fanout_sent\":{},\"fanout_recv\":{},\"tx_packets\":{},\
         \"lookups\":{},\"emc_hits\":{},\"megaflow_hits\":{},\"classifier_hits\":{},\
         \"misses\":{},\"busy_cycles\":{},\"idle_cycles\":{},\"useful_cycle_ratio\":{:.6},",
        p.pmd,
        p.iterations,
        p.idle_iterations,
        p.rx_packets,
        p.rx_batches,
        p.fanout_sent,
        p.fanout_recv,
        p.tx_packets,
        p.lookups,
        p.emc_hits,
        p.megaflow_hits,
        p.classifier_hits,
        p.misses,
        p.busy_cycles,
        p.idle_cycles,
        p.useful_cycle_ratio(),
    ));
    out.push_str("\"stages\":");
    out.push_str(&hist_map_json(
        Stage::ALL
            .iter()
            .map(|s| (s.name(), HistSummary::of(p.stage(*s)))),
    ));
    out.push_str(",\"tiers\":");
    out.push_str(&hist_map_json(
        Tier::ALL
            .iter()
            .map(|t| (t.name(), HistSummary::of(p.tier(*t)))),
    ));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut p0 = PmdPerf::new(0);
        p0.record_lookup(Some(Tier::Emc), 60, 8);
        p0.record_stage(Stage::Classify, 60, 8);
        let mut p1 = PmdPerf::new(1);
        p1.record_lookup(None, 800, 2);
        p1.record_stage(Stage::Classify, 800, 2);
        let mut coverage = BTreeMap::new();
        coverage.insert("emc_insert", 5u64);
        TelemetrySnapshot {
            enabled: true,
            taken_at_cycles: 42,
            pmds: vec![p0, p1],
            totals: DatapathTotals {
                lookups: 10,
                matched: 8,
                emc_hits: 8,
                misses: 2,
                ..Default::default()
            },
            coverage,
            traces_retained: 1,
            trace_groups_observed: 10,
            pools: vec![PoolStats {
                name: "hw-arena".into(),
                kind: crate::pools::PoolKind::Arena,
                capacity: 64,
                available: 60,
                in_use: 4,
                high_water: 9,
                allocs: 100,
                alloc_failures: 1,
                frees: 50,
                foreign_frees: 0,
                credit_returns: 46,
                credits_reclaimed: 40,
                cow_copies: 2,
                slab_writes: 102,
            }],
            doorbells: DoorbellTotals {
                rings: 4,
                notified_pkts: 128,
                suppressed: 124,
            },
        }
    }

    #[test]
    fn aggregate_merges_pmds() {
        let snap = sample_snapshot();
        let agg = snap.aggregate();
        assert_eq!(agg.lookups, 10);
        assert_eq!(agg.misses, 2);
        assert_eq!(snap.stage_summary(Stage::Classify).count, 10);
        assert_eq!(snap.tier_summary(Tier::Emc).count, 1);
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let v = json::parse(&text).expect("snapshot JSON must parse");
        assert_eq!(
            v.get("totals")
                .and_then(|t| t.get("lookups"))
                .and_then(|x| x.as_u64()),
            Some(10)
        );
        let pmds = v.get("pmds").and_then(|p| p.as_array()).unwrap();
        assert_eq!(pmds.len(), 2);
        assert_eq!(pmds[1].get("misses").and_then(|x| x.as_u64()), Some(2));
        let classify = v
            .get("stage_totals")
            .and_then(|s| s.get("classify"))
            .unwrap();
        assert_eq!(classify.get("count").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(
            v.get("coverage")
                .and_then(|c| c.get("emc_insert"))
                .and_then(|x| x.as_u64()),
            Some(5)
        );
        let pools = v.get("pools").and_then(|p| p.as_array()).unwrap();
        assert_eq!(pools.len(), 1);
        assert_eq!(pools[0].get("high_water").and_then(|x| x.as_u64()), Some(9));
        assert_eq!(
            pools[0].get("credit_returns").and_then(|x| x.as_u64()),
            Some(46)
        );
        assert_eq!(
            v.get("doorbells")
                .and_then(|d| d.get("notified_pkts"))
                .and_then(|x| x.as_u64()),
            Some(128)
        );
    }
}
