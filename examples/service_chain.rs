//! The paper's motivating service graph (Figure 1): firewall → network
//! monitor → web cache, deployed as a chain of three VMs with the highway
//! accelerating every inter-VNF seam.
//!
//! ```text
//! cargo run --example service_chain
//! ```

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;

fn main() {
    let node = HighwayNode::new(HighwayNodeConfig::default());

    // Edge ports.
    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    // The three VNFs of Figure 1. The firewall blocks telnet (port 23).
    let dep = node
        .orchestrator()
        .deploy_chain(3, entry_no, exit_no, |i| match i {
            0 => VnfSpec {
                name: "firewall".into(),
                app: AppKind::Firewall(vec![FirewallRule::deny_dst_port(23)]),
            },
            1 => VnfSpec {
                name: "monitor".into(),
                app: AppKind::Monitor,
            },
            _ => VnfSpec {
                name: "webcache".into(),
                app: AppKind::WebCache,
            },
        });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();

    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    println!("bypass links after deployment: {:?}", node.active_links());
    // Two inner seams, both directions each.
    assert_eq!(node.active_links().len(), 4);

    // Mixed traffic: web flows, DNS, and some telnet the firewall drops.
    let mut sent_ok = 0u64;
    let mut sent_blocked = 0u64;
    for i in 0..600u64 {
        let dst_port = match i % 3 {
            0 => 80, // web
            1 => 53, // dns
            _ => 23, // telnet — firewalled
        };
        if dst_port == 23 {
            sent_blocked += 1;
        } else {
            sent_ok += 1;
        }
        let pkt = PacketBuilder::udp_probe(64)
            .ip(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .ports(40_000 + (i % 7) as u16, dst_port)
            .seq(i)
            .build();
        let mut m = Mbuf::from_slice(&pkt);
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }

    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < sent_ok && Instant::now() < deadline {
        match exit.recv() {
            Some(_) => received += 1,
            None => std::thread::yield_now(),
        }
    }
    println!(
        "sent {} allowed + {} telnet (blocked); delivered {}",
        sent_ok, sent_blocked, received
    );
    assert_eq!(received, sent_ok, "firewall must drop exactly the telnet");

    // Guest counters show each VNF did its job.
    let fw = &dep.vms[0];
    let dropped = fw
        .counters()
        .dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    println!("firewall dropped: {dropped}");
    assert_eq!(dropped, sent_blocked);

    // Which cache tier carried the switch-side traffic: steady chains
    // resolve almost everything in the EMC/megaflow tiers, not the
    // classifier — the fast-path property the megaflow cache exists for.
    let cs = node.switch().datapath().cache_stats();
    println!(
        "datapath lookups: {} (emc={} megaflow={} classifier={} misses={})",
        cs.lookups, cs.emc_hits, cs.megaflow_hits, cs.classifier_hits, cs.misses
    );

    node.stop();
    for vm in &dep.vms {
        vm.shutdown();
    }
    println!("service_chain OK");
}
