//! Failure injection and recovery, narrated through the event journal.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```
//!
//! Runs a 2-VM chain with the paper's ~100 ms hypervisor latencies, arms a
//! QEMU hot-plug failure, and watches the highway: the setup fails, the
//! data path keeps flowing through the switch, and the next rule change
//! heals the bypass — all visible as a live stream of lifecycle events.

use std::time::{Duration, Instant};
use vnf_highway::highway::{AccelerationPolicy, BypassEventKind};
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;
use vnf_highway::vm::FaultOp;

fn main() {
    // Exclude the external edge ports (1 and 2) from acceleration: they
    // have no VM behind them, so attempts would only pollute the journal.
    let node = HighwayNode::new(HighwayNodeConfig {
        policy: AccelerationPolicy::paper().exclude_port(1).exclude_port(2),
        ..HighwayNodeConfig::paper_latencies()
    });

    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    let vm_a = node.orchestrator().create_vm(VnfSpec::forwarder("vm-a"), 2);
    let vm_b = node.orchestrator().create_vm(VnfSpec::forwarder("vm-b"), 2);
    node.register_vm(vm_a.clone());
    node.register_vm(vm_b.clone());
    node.start();

    // Subscribe to the journal before anything happens.
    let journal = node.journal().expect("highway node").clone();
    let events = journal.subscribe();
    let t0 = Instant::now();
    let watcher = std::thread::spawn(move || {
        let mut log = Vec::new();
        while let Ok(ev) = events.recv_timeout(Duration::from_secs(30)) {
            println!(
                "  [{:>7.1} ms] {:?} {}→{} {}",
                t0.elapsed().as_secs_f64() * 1e3,
                ev.kind,
                ev.src,
                ev.dst,
                ev.detail
            );
            let done = ev.kind == BypassEventKind::Active && !log.is_empty();
            log.push(ev.kind);
            if done {
                break;
            }
        }
        log
    });

    let ctrl = node.connect_controller();
    let install = |cookie: u64| {
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(vm_a.of_ports()[1] as u16)),
            100,
            vec![Action::Output(PortNo(vm_b.of_ports()[0] as u16))],
            cookie,
        )
        .expect("flow_mod");
        ctrl.barrier(Duration::from_secs(2)).expect("barrier");
    };
    // Edge rules (entry→vm-a, vm-b→exit): their ports are covered by the
    // exclusion policy above, so the journal stays about the real seam.
    ctrl.add_flow(
        FlowMatch::in_port(PortNo(entry_no as u16)),
        100,
        vec![Action::Output(PortNo(vm_a.of_ports()[0] as u16))],
        1,
    )
    .unwrap();
    ctrl.add_flow(
        FlowMatch::in_port(PortNo(vm_b.of_ports()[1] as u16)),
        100,
        vec![Action::Output(PortNo(exit_no as u16))],
        2,
    )
    .unwrap();

    println!("arming one QEMU device_add failure, then installing the p-2-p rule:");
    node.agent().faults().arm(FaultOp::Plug, 1);
    install(0xAA);

    // Wait for the failure to be recorded.
    assert!(journal.wait_for(
        BypassEventKind::SetupFailed,
        vm_a.of_ports()[1],
        vm_b.of_ports()[0],
        Duration::from_secs(10),
    ));
    println!("\nsetup failed — but the data path is unaffected:");
    let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(7).build());
    loop {
        match entry.send(m) {
            Ok(()) => break,
            Err(ret) => {
                m = ret;
                std::thread::yield_now();
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(got) = exit.recv() {
            println!(
                "  probe seq {} delivered via the normal path\n",
                ProbeHeader::from_frame(got.data()).unwrap().seq
            );
            break;
        }
        assert!(Instant::now() < deadline, "normal path must carry traffic");
        std::thread::yield_now();
    }

    println!("re-installing the rule (no faults armed) — the highway heals:");
    ctrl.del_flow_strict(FlowMatch::in_port(PortNo(vm_a.of_ports()[1] as u16)), 100)
        .unwrap();
    install(0xBB);
    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    assert_eq!(node.active_links().len(), 1);

    let log = watcher.join().unwrap();
    assert!(log.contains(&BypassEventKind::SetupFailed));
    assert!(log.contains(&BypassEventKind::Active));
    println!(
        "\nhealed: active links {:?}; {} journal events total",
        node.active_links(),
        journal.len()
    );

    node.stop();
    vm_a.shutdown();
    vm_b.shutdown();
    println!("failure_recovery OK");
}
