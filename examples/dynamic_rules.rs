//! Dynamicity (§1): bypasses follow the OpenFlow rules at run time.
//!
//! ```text
//! cargo run --example dynamic_rules
//! ```
//!
//! The controller first steers *all* traffic from vm-a to vm-b (a p-2-p
//! link: bypass comes up), then adds a second, web-only rule on the same
//! ingress port (no longer point-to-point: bypass is torn down — packets
//! return to the vSwitch path), then deletes it again (bypass returns).
//! Traffic keeps flowing through every transition.

use std::time::{Duration, Instant};
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;

fn main() {
    let node = HighwayNode::new(HighwayNodeConfig::default());

    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    let vm_a = node.orchestrator().create_vm(VnfSpec::forwarder("vm-a"), 2);
    let vm_b = node.orchestrator().create_vm(VnfSpec::forwarder("vm-b"), 2);
    node.register_vm(vm_a.clone());
    node.register_vm(vm_b.clone());
    node.start();

    let ctrl = node.connect_controller();
    let (a_in, a_out) = (vm_a.of_ports()[0], vm_a.of_ports()[1]);
    let (b_in, b_out) = (vm_b.of_ports()[0], vm_b.of_ports()[1]);
    for (i, (from, to)) in [(entry_no, a_in), (a_out, b_in), (b_out, exit_no)]
        .iter()
        .enumerate()
    {
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(*from as u16)),
            100,
            vec![Action::Output(PortNo(*to as u16))],
            0x200 + i as u64,
        )
        .unwrap();
    }
    ctrl.barrier(Duration::from_secs(2)).unwrap();
    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    println!(
        "[1] p-2-p rules installed      → links: {:?}",
        node.active_links()
    );
    assert_eq!(node.active_links(), vec![(a_out, b_in)]);

    let push_and_count = |entry: &mut vnf_highway::shmem::ChannelEnd,
                          exit: &mut vnf_highway::shmem::ChannelEnd,
                          n: u64|
     -> u64 {
        for seq in 0..n {
            let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
            loop {
                match entry.send(m) {
                    Ok(()) => break,
                    Err(ret) => {
                        m = ret;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let mut got = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while got < n && Instant::now() < deadline {
            match exit.recv() {
                Some(_) => got += 1,
                None => std::thread::yield_now(),
            }
        }
        got
    };

    assert_eq!(push_and_count(&mut entry, &mut exit, 200), 200);
    println!("[1] 200/200 packets via the bypass");

    // A second rule on vm-a's egress port: the seam is no longer pure
    // point-to-point, so the highway must revert it — dynamically.
    let mut web = FlowMatch::in_port(PortNo(a_out as u16));
    web.eth_type = Some(0x0800);
    web.ip_proto = Some(17);
    web.l4_dst = Some(80);
    ctrl.add_flow(web, 200, vec![Action::Output(PortNo(b_in as u16))], 0x999)
        .unwrap();
    ctrl.barrier(Duration::from_secs(2)).unwrap();
    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    println!(
        "[2] web rule added on same port → links: {:?}",
        node.active_links()
    );
    assert!(node.active_links().is_empty());

    assert_eq!(push_and_count(&mut entry, &mut exit, 200), 200);
    println!("[2] 200/200 packets via the vSwitch path");

    // Delete the narrowing rule: the bypass comes back.
    ctrl.del_flow_strict(web, 200).unwrap();
    ctrl.barrier(Duration::from_secs(2)).unwrap();
    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    println!(
        "[3] web rule deleted            → links: {:?}",
        node.active_links()
    );
    assert_eq!(node.active_links(), vec![(a_out, b_in)]);

    assert_eq!(push_and_count(&mut entry, &mut exit, 200), 200);
    println!("[3] 200/200 packets via the re-established bypass");

    // The setup log recorded both activations.
    println!(
        "setup log: {} activations, last took {:?}",
        node.setup_log().len(),
        node.setup_log().last().map(|r| r.setup_time())
    );

    node.stop();
    vm_a.shutdown();
    vm_b.shutdown();
    println!("dynamic_rules OK");
}
