//! The paper's Figure 1(a) service graph, deployed end to end:
//!
//! ```text
//!            all            all          web (udp/80)
//!   entry ───────▶ firewall ────▶ monitor ────────────▶ web cache ──┐
//!                                    │                              │ all
//!                                    │ all (non-web fallback)       ▼
//!                                    └────────────────────────────▶ exit
//! ```
//!
//! ```text
//! cargo run --example service_graph
//! ```
//!
//! The firewall→monitor seam is the only *pure* point-to-point VM link,
//! so it is the only seam the highway accelerates; the monitor's egress
//! carries a web/non-web split and stays on the switch. The example
//! prints which seams were accelerated, pushes a traffic mix through the
//! graph and shows each VNF's observations.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use vnf_highway::highway::AccelerationPolicy;
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;
use vnf_highway::vm::{AppKind, GraphEdgeSpec, GraphPort, GraphSpec};

fn main() {
    // External edge ports are not VM-backed: tell the highway not to try.
    let node = HighwayNode::new(HighwayNodeConfig {
        policy: AccelerationPolicy::paper().exclude_port(1).exclude_port(2),
        ..HighwayNodeConfig::default()
    });
    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 2048);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    // "Web" means UDP to port 80 in this synthetic mix.
    let mut web = FlowMatch::any();
    web.ip_proto = Some(17);
    web.l4_dst = Some(80);

    let fw_in = GraphPort::Vnf { node: 0, port: 0 };
    let fw_out = GraphPort::Vnf { node: 0, port: 1 };
    let mon_in = GraphPort::Vnf { node: 1, port: 0 };
    let mon_out = GraphPort::Vnf { node: 1, port: 1 };
    let cache_in = GraphPort::Vnf { node: 2, port: 0 };
    let cache_out = GraphPort::Vnf { node: 2, port: 1 };

    let dep = node.orchestrator().deploy_graph(GraphSpec {
        vnfs: vec![
            (
                VnfSpec {
                    name: "firewall".into(),
                    app: AppKind::Firewall(vec![
                        FirewallRule::deny_dst_port(23),
                        FirewallRule::any(true),
                    ]),
                },
                2,
            ),
            (
                VnfSpec {
                    name: "monitor".into(),
                    app: AppKind::Monitor,
                },
                2,
            ),
            (
                VnfSpec {
                    name: "web-cache".into(),
                    app: AppKind::WebCache,
                },
                2,
            ),
        ],
        edges: vec![
            GraphEdgeSpec::all(GraphPort::External(entry_no), fw_in),
            GraphEdgeSpec::all(fw_out, mon_in),
            GraphEdgeSpec::matching(mon_out, cache_in, web, 200),
            GraphEdgeSpec::all(mon_out, GraphPort::External(exit_no)),
            GraphEdgeSpec::all(cache_out, GraphPort::External(exit_no)),
        ],
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    assert!(node.wait_highway_converged(Duration::from_secs(10)));

    println!("deployed Figure 1(a):");
    for (i, name) in ["firewall", "monitor", "web-cache"].iter().enumerate() {
        println!("  {name:9} ports {:?}", dep.vnf_ports[i]);
    }
    println!("accelerated seams: {:?}", node.active_links());
    println!(
        "  (only firewall→monitor is pure p-2-p; the monitor egress is a\n   \
         web/non-web split and correctly stays on the switch)\n"
    );
    assert_eq!(node.active_links().len(), 1);

    // A mix: 300 DNS, 200 web, 50 telnet (the firewall eats those).
    let mut sent = 0u64;
    for (count, dst_port) in [(300u64, 53u16), (200, 80), (50, 23)] {
        for _ in 0..count {
            let mut m = Mbuf::from_slice(
                &PacketBuilder::udp_probe(64)
                    .ports(40_000, dst_port)
                    .seq(sent)
                    .build(),
            );
            loop {
                match entry.send(m) {
                    Ok(()) => break,
                    Err(ret) => {
                        m = ret;
                        std::thread::yield_now();
                    }
                }
            }
            sent += 1;
        }
    }

    // 500 packets survive the firewall; collect them at the exit.
    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(15);
    while received < 500 && Instant::now() < deadline {
        match exit.recv() {
            Some(_) => received += 1,
            None => std::thread::yield_now(),
        }
    }
    println!("offered {sent}, delivered {received} (firewall dropped the 50 telnet)");
    assert_eq!(received, 500);

    let fw = &dep.vms[0];
    let mon = &dep.vms[1];
    let cache = &dep.vms[2];
    println!(
        "firewall : {} forwarded, {} denied",
        fw.counters().forwarded.load(Ordering::Relaxed),
        fw.counters().dropped.load(Ordering::Relaxed),
    );
    println!(
        "monitor  : {} observed",
        mon.counters().forwarded.load(Ordering::Relaxed)
    );
    println!(
        "web-cache: {} web packets detoured through it",
        cache.counters().forwarded.load(Ordering::Relaxed)
    );
    assert_eq!(cache.counters().forwarded.load(Ordering::Relaxed), 200);

    node.stop();
    for vm in &dep.vms {
        vm.shutdown();
    }
    println!("service_graph OK");
}
