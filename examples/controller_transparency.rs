//! Transparency (§1): an unmodified OpenFlow controller cannot tell a
//! highway switch from a vanilla one.
//!
//! ```text
//! cargo run --example controller_transparency
//! ```
//!
//! Runs the *same* deployment and workload twice — once vanilla, once with
//! the highway — and compares everything a controller can observe: flow
//! statistics, port statistics, and packet-out delivery.

use std::time::{Duration, Instant};
use vnf_highway::openflow::messages::{FlowStatsEntry, PortStatsEntry};
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;

struct Observed {
    flows: Vec<FlowStatsEntry>,
    ports: Vec<PortStatsEntry>,
    packet_out_delivered: bool,
}

/// Deploys a 2-VM chain, pushes `n` packets, returns the controller view.
fn run(highway: bool, n: u64) -> Observed {
    let node = HighwayNode::new(if highway {
        HighwayNodeConfig::default()
    } else {
        HighwayNodeConfig::vanilla()
    });
    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    let dep = node.orchestrator().deploy_chain(2, entry_no, exit_no, |i| {
        VnfSpec::forwarder(format!("vm{i}"))
    });
    for vm in &dep.vms {
        node.register_vm(vm.clone());
    }
    node.start();
    let ctrl = node.connect_controller();
    assert!(node.wait_highway_converged(Duration::from_secs(10)));

    // Workload.
    for seq in 0..n {
        let mut m = Mbuf::from_slice(&PacketBuilder::udp_probe(64).seq(seq).build());
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while got < n && Instant::now() < deadline {
        match exit.recv() {
            Some(_) => got += 1,
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(got, n, "all packets must arrive (highway={highway})");

    // Packet-out towards the bypassed VM's port: must still arrive via the
    // normal channel even while the bypass carries the data path.
    let vm0_in = dep.vm_ports[0].0;
    ctrl.packet_out(
        PacketBuilder::udp_probe(64).seq(0xdead).build(),
        vec![Action::Output(PortNo(vm0_in as u16))],
    )
    .unwrap();
    ctrl.barrier(Duration::from_secs(2)).unwrap();
    // The packet-out enters vm0 and is forwarded down the chain to exit.
    let mut packet_out_delivered = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if exit.recv().is_some() {
            packet_out_delivered = true;
            break;
        }
        std::thread::yield_now();
    }

    let mut flows = ctrl.flow_stats(Duration::from_secs(2)).unwrap();
    flows.sort_by_key(|e| e.cookie);
    let mut ports = ctrl.port_stats(Duration::from_secs(2)).unwrap();
    ports.sort_by_key(|e| e.port_no);
    node.stop();
    for vm in &dep.vms {
        vm.shutdown();
    }
    Observed {
        flows,
        ports,
        packet_out_delivered,
    }
}

fn main() {
    const N: u64 = 500;
    let vanilla = run(false, N);
    let highway = run(true, N);

    println!("controller view           vanilla == highway?");
    for (v, h) in vanilla.flows.iter().zip(&highway.flows) {
        println!(
            "  flow cookie {:#06x}: {:>6} pkts vs {:>6} pkts   {}",
            v.cookie,
            v.packet_count,
            h.packet_count,
            if v.packet_count == h.packet_count {
                "=="
            } else {
                "!="
            }
        );
        assert_eq!(v.cookie, h.cookie);
        assert_eq!(
            v.packet_count, h.packet_count,
            "flow stats must be indistinguishable"
        );
        assert_eq!(v.byte_count, h.byte_count);
    }
    for (v, h) in vanilla.ports.iter().zip(&highway.ports) {
        assert_eq!(v.port_no, h.port_no);
        assert_eq!(
            (v.rx_packets, v.tx_packets),
            (h.rx_packets, h.tx_packets),
            "port {} stats must be indistinguishable",
            v.port_no
        );
    }
    println!(
        "  packet-out delivered:   {} vs {}",
        vanilla.packet_out_delivered, highway.packet_out_delivered
    );
    assert!(vanilla.packet_out_delivered && highway.packet_out_delivered);
    println!("controller_transparency OK — the controller cannot tell the difference");
}
