//! Quickstart: two VMs, one point-to-point rule, one transparent bypass.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a highway-enabled node, boots two forwarder VMs, installs the
//! p-2-p steering rule through a real OpenFlow control channel, waits for
//! the bypass to come up, pushes traffic through it and shows that the
//! controller-visible statistics still count every packet.

use std::time::{Duration, Instant};
use vnf_highway::prelude::*;
use vnf_highway::shmem::SegmentKind;

fn main() {
    // A server node with the highway enabled (zero hypervisor latency so
    // the example is instant; use `HighwayNodeConfig::paper_latencies()`
    // to see the ~100 ms setup of the paper).
    let node = HighwayNode::new(HighwayNodeConfig::default());

    // Two edge dpdkr ports stand in for the traffic generator and sink.
    let entry_no = node.orchestrator().alloc_port();
    let (mut entry, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{entry_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(entry_no as u16), "entry", sw_end);
    let exit_no = node.orchestrator().alloc_port();
    let (mut exit, sw_end) =
        node.registry()
            .create_channel(format!("dpdkr{exit_no}"), SegmentKind::DpdkrNormal, 1024);
    node.switch()
        .add_dpdkr_port(PortNo(exit_no as u16), "exit", sw_end);

    // Two VMs running the paper's forwarder application.
    let vm_a = node.orchestrator().create_vm(VnfSpec::forwarder("vm-a"), 2);
    let vm_b = node.orchestrator().create_vm(VnfSpec::forwarder("vm-b"), 2);
    node.register_vm(vm_a.clone());
    node.register_vm(vm_b.clone());
    node.start();

    // An ordinary OpenFlow controller installs the steering rules:
    // entry → vm-a → vm-b → exit. It has no idea the highway exists.
    let ctrl = node.connect_controller();
    let seams = [
        (entry_no, vm_a.of_ports()[0]),
        (vm_a.of_ports()[1], vm_b.of_ports()[0]),
        (vm_b.of_ports()[1], exit_no),
    ];
    for (i, (from, to)) in seams.iter().enumerate() {
        ctrl.add_flow(
            FlowMatch::in_port(PortNo(*from as u16)),
            100,
            vec![Action::Output(PortNo(*to as u16))],
            0x100 + i as u64,
        )
        .expect("flow_mod");
    }
    ctrl.barrier(Duration::from_secs(2)).expect("barrier");

    // The detector recognises the vm-a → vm-b seam as point-to-point and
    // the compute agent splices a bypass channel underneath it.
    assert!(node.wait_highway_converged(Duration::from_secs(10)));
    println!("active bypass links: {:?}", node.active_links());
    assert_eq!(node.active_links().len(), 1);

    // Push 1000 probes through the chain.
    for seq in 0..1000u64 {
        let pkt = PacketBuilder::udp_probe(64).seq(seq).build();
        let mut m = Mbuf::from_slice(&pkt);
        loop {
            match entry.send(m) {
                Ok(()) => break,
                Err(ret) => {
                    m = ret;
                    std::thread::yield_now();
                }
            }
        }
    }
    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < 1000 && Instant::now() < deadline {
        match exit.recv() {
            Some(_) => received += 1,
            None => std::thread::yield_now(),
        }
    }
    println!("delivered end-to-end: {received}/1000");
    assert_eq!(received, 1000);

    // Transparency: the controller's flow statistics count the bypassed
    // packets even though the switch never forwarded them.
    let stats = ctrl.flow_stats(Duration::from_secs(2)).expect("stats");
    let middle = stats
        .iter()
        .find(|e| e.cookie == 0x101)
        .expect("middle rule");
    println!(
        "middle (bypassed) rule counters: {} packets / {} bytes",
        middle.packet_count, middle.byte_count
    );
    assert_eq!(middle.packet_count, 1000);

    // The operator view: flows, ports, and the highway's link states.
    println!("\n{}", node.status_report());

    node.stop();
    vm_a.shutdown();
    vm_b.shutdown();
    println!("quickstart OK");
}
